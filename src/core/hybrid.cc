#include "core/hybrid.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "data/encoding.h"
#include "nn/complex_linear.h"

namespace metaai::core {
namespace {

// Head hidden width relative to the over-the-air hidden layer.
std::size_t HeadHidden(std::size_t ota_hidden) { return 2 * ota_hidden; }

std::vector<double> NormalizeByMean(const std::vector<double>& m) {
  double mu = 0.0;
  for (const double v : m) mu += v;
  mu /= static_cast<double>(m.size());
  std::vector<double> normalized(m.size());
  const double inv = mu > 1e-300 ? 1.0 / mu : 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) normalized[i] = m[i] * inv;
  return normalized;
}

}  // namespace

HybridModel::HybridModel(std::size_t input_dim, std::size_t hidden_units,
                         std::size_t num_classes, rf::Modulation modulation)
    : ota_layer_{.network = nn::ComplexLinearModel(input_dim, hidden_units),
                 .modulation = modulation} {
  Check(hidden_units > 0 && num_classes > 0, "hybrid model needs dimensions");
  const std::size_t h2 = HeadHidden(hidden_units);
  head_.v1 = RealMatrix(h2, hidden_units);
  head_.b1.assign(h2, 0.0);
  head_.v2 = RealMatrix(num_classes, h2);
  head_.b2.assign(num_classes, 0.0);
}

void HybridModel::Initialize(Rng& rng) {
  ota_layer_.network.Initialize(rng);
  const double s1 = std::sqrt(2.0 / static_cast<double>(hidden_units()));
  for (std::size_t r = 0; r < head_.v1.rows(); ++r) {
    for (std::size_t c = 0; c < head_.v1.cols(); ++c) {
      head_.v1(r, c) = rng.Normal(0.0, s1);
    }
  }
  const double s2 = std::sqrt(2.0 / static_cast<double>(head_.v1.rows()));
  for (std::size_t r = 0; r < head_.v2.rows(); ++r) {
    for (std::size_t c = 0; c < head_.v2.cols(); ++c) {
      head_.v2(r, c) = rng.Normal(0.0, s2);
    }
  }
  std::fill(head_.b1.begin(), head_.b1.end(), 0.0);
  std::fill(head_.b2.begin(), head_.b2.end(), 0.0);
}

std::vector<double> HybridModel::HeadLogits(
    const std::vector<double>& magnitudes) const {
  const auto normalized = NormalizeByMean(magnitudes);
  std::vector<double> h1(head_.v1.rows(), 0.0);
  for (std::size_t r = 0; r < head_.v1.rows(); ++r) {
    double acc = head_.b1[r];
    const double* row = head_.v1.row(r);
    for (std::size_t c = 0; c < normalized.size(); ++c) {
      acc += row[c] * normalized[c];
    }
    h1[r] = std::max(acc, 0.0);
  }
  std::vector<double> logits(head_.v2.rows(), 0.0);
  for (std::size_t r = 0; r < head_.v2.rows(); ++r) {
    double acc = head_.b2[r];
    const double* row = head_.v2.row(r);
    for (std::size_t c = 0; c < h1.size(); ++c) acc += row[c] * h1[c];
    logits[r] = acc;
  }
  return logits;
}

int HybridModel::PredictFromHiddenScores(
    const std::vector<double>& hidden_scores) const {
  Check(hidden_scores.size() == hidden_units(),
        "hidden score dimension mismatch");
  const auto logits = HeadLogits(hidden_scores);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

int HybridModel::Predict(const std::vector<double>& pixels) const {
  const auto symbols = data::EncodeSample(pixels, modulation());
  const auto scores = ota_layer_.network.ClassScores(symbols);
  return PredictFromHiddenScores(scores);
}

double HybridModel::Evaluate(const nn::RealDataset& test) const {
  test.Validate();
  Check(test.dim == input_dim(), "dataset dimension mismatch");
  if (test.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += (Predict(test.features[i]) == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double HybridModel::Train(const nn::RealDataset& train,
                          const HybridTrainOptions& options, Rng& rng) {
  train.Validate();
  Check(train.dim == input_dim(), "dataset dimension mismatch");
  Check(train.num_classes == num_classes(), "class count mismatch");
  Check(options.epochs > 0 && options.batch_size > 0, "bad options");

  const nn::ComplexDataset encoded =
      data::EncodeDataset(train, modulation());
  const std::size_t n = encoded.size();
  const std::size_t H = hidden_units();
  const std::size_t H2 = head_.v1.rows();
  const std::size_t R = num_classes();
  const std::size_t U = input_dim();

  ComplexMatrix& w = ota_layer_.network.mutable_weights();
  ComplexMatrix gw(H, U);
  ComplexMatrix vw(H, U);
  RealMatrix gv1(H2, H), vv1(H2, H);
  RealMatrix gv2(R, H2), vv2(R, H2);
  std::vector<double> gb1(H2, 0.0), vb1(H2, 0.0);
  std::vector<double> gb2(R, 0.0), vb2(R, 0.0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const double symbols_per_us = options.symbol_rate_hz * 1e-6;
  std::vector<nn::Complex> augmented;
  double final_epoch_loss = 0.0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(options.batch_size));
      gw.Fill({0.0, 0.0});
      gv1.Fill(0.0);
      gv2.Fill(0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gb2.begin(), gb2.end(), 0.0);

      for (std::size_t b = start; b < end; ++b) {
        const std::size_t idx = order[b];
        const std::vector<nn::Complex>* x = &encoded.features[idx];
        if (options.sync_error_injection) {
          augmented = *x;
          const double error_us =
              rng.Bernoulli(options.sync_small_error_mix)
                  ? rng.Uniform(0.0, options.sync_gamma_scale_us)
                  : rng.Gamma(options.sync_gamma_shape,
                              options.sync_gamma_scale_us);
          CyclicShift(augmented, static_cast<std::size_t>(std::llround(
                                     error_us * symbols_per_us)));
          x = &augmented;
        }

        // ---- Forward ----
        std::vector<nn::Complex> z(H);
        std::vector<double> m(H);
        for (std::size_t h = 0; h < H; ++h) {
          const nn::Complex* row = w.row(h);
          nn::Complex acc{0.0, 0.0};
          for (std::size_t i = 0; i < U; ++i) acc += row[i] * (*x)[i];
          z[h] = acc;
          m[h] = std::abs(acc);
        }
        double mu = 0.0;
        for (const double v : m) mu += v;
        mu /= static_cast<double>(H);
        if (mu < 1e-300) continue;
        std::vector<double> mh(H);
        for (std::size_t h = 0; h < H; ++h) mh[h] = m[h] / mu;
        std::vector<double> h1(H2);
        for (std::size_t r = 0; r < H2; ++r) {
          double acc = head_.b1[r];
          const double* row = head_.v1.row(r);
          for (std::size_t c = 0; c < H; ++c) acc += row[c] * mh[c];
          h1[r] = std::max(acc, 0.0);
        }
        std::vector<double> logits(R);
        for (std::size_t r = 0; r < R; ++r) {
          double acc = head_.b2[r];
          const double* row = head_.v2.row(r);
          for (std::size_t c = 0; c < H2; ++c) acc += row[c] * h1[c];
          logits[r] = acc;
        }
        const auto probs = nn::SoftmaxScores(logits);
        const int label = encoded.labels[idx];
        epoch_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)],
                                         1e-12));

        // ---- Backward ----
        std::vector<double> g_logits = probs;
        g_logits[static_cast<std::size_t>(label)] -= 1.0;
        std::vector<double> g_h1(H2, 0.0);
        for (std::size_t r = 0; r < R; ++r) {
          gb2[r] += g_logits[r];
          double* gv2_row = gv2.row(r);
          const double* v2_row = head_.v2.row(r);
          for (std::size_t c = 0; c < H2; ++c) {
            gv2_row[c] += g_logits[r] * h1[c];
            g_h1[c] += v2_row[c] * g_logits[r];
          }
        }
        for (std::size_t r = 0; r < H2; ++r) {
          if (h1[r] <= 0.0) g_h1[r] = 0.0;
        }
        std::vector<double> g_mh(H, 0.0);
        for (std::size_t r = 0; r < H2; ++r) {
          if (g_h1[r] == 0.0) continue;
          gb1[r] += g_h1[r];
          double* gv1_row = gv1.row(r);
          const double* v1_row = head_.v1.row(r);
          for (std::size_t c = 0; c < H; ++c) {
            gv1_row[c] += g_h1[r] * mh[c];
            g_mh[c] += v1_row[c] * g_h1[r];
          }
        }
        // Through the mean normalization: dL/dm_l = (1/mu) (g_mh_l -
        // mean_k(g_mh_k * mh_k)).
        double mix = 0.0;
        for (std::size_t h = 0; h < H; ++h) mix += g_mh[h] * mh[h];
        mix /= static_cast<double>(H);
        for (std::size_t h = 0; h < H; ++h) {
          const double g_m = (g_mh[h] - mix) / mu;
          if (m[h] < 1e-12) continue;
          const nn::Complex scaled = g_m * (z[h] / m[h]);
          nn::Complex* gw_row = gw.row(h);
          for (std::size_t i = 0; i < U; ++i) {
            gw_row[i] += scaled * std::conj((*x)[i]);
          }
        }
      }

      // ---- SGD with momentum ----
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      const double lr = options.learning_rate;
      const double momentum = options.momentum;
      for (std::size_t h = 0; h < H; ++h) {
        nn::Complex* vw_row = vw.row(h);
        nn::Complex* gw_row = gw.row(h);
        nn::Complex* w_row = w.row(h);
        for (std::size_t i = 0; i < U; ++i) {
          vw_row[i] = momentum * vw_row[i] - lr * gw_row[i] * inv_batch;
          w_row[i] += vw_row[i];
        }
      }
      auto apply_real = [&](RealMatrix& param, RealMatrix& grad,
                            RealMatrix& velocity) {
        for (std::size_t r = 0; r < param.rows(); ++r) {
          double* p = param.row(r);
          double* g = grad.row(r);
          double* v = velocity.row(r);
          for (std::size_t c = 0; c < param.cols(); ++c) {
            v[c] = momentum * v[c] - lr * g[c] * inv_batch;
            p[c] += v[c];
          }
        }
      };
      apply_real(head_.v1, gv1, vv1);
      apply_real(head_.v2, gv2, vv2);
      for (std::size_t r = 0; r < H2; ++r) {
        vb1[r] = momentum * vb1[r] - lr * gb1[r] * inv_batch;
        head_.b1[r] += vb1[r];
      }
      for (std::size_t r = 0; r < R; ++r) {
        vb2[r] = momentum * vb2[r] - lr * gb2[r] * inv_batch;
        head_.b2[r] += vb2[r];
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  return final_epoch_loss;
}

double EvaluateHybridOverTheAir(const HybridModel& model,
                                const mts::Metasurface& surface,
                                const sim::OtaLinkConfig& link_config,
                                const nn::RealDataset& test,
                                const sim::SyncModel& sync, Rng& rng,
                                std::size_t max_samples,
                                const DeploymentOptions& options) {
  test.Validate();
  Check(test.dim == model.input_dim(), "dataset dimension mismatch");
  // Deploy the OTA layer: the surface computes the hidden units.
  const Deployment deployment(model.ota_layer(), surface, link_config,
                              options);
  const std::size_t n =
      max_samples > 0 ? std::min(max_samples, test.size()) : test.size();
  Check(n > 0, "empty test set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double offset = sync.SampleOffsetUs(rng);
    const auto hidden =
        deployment.ClassScores(test.features[i], offset, rng);
    correct += (model.PredictFromHiddenScores(hidden) == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace metaai::core
