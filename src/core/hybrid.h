// Hybrid over-the-air / digital model — the paper's §7 future-work
// direction ("incorporating more complex operations to close this
// accuracy gap").
//
// The metasurface computes a *hidden* complex linear layer during
// propagation (H rounds instead of R); the edge server applies a tiny
// nonlinear head (one ReLU MLP layer) to the received magnitudes. The
// channel's unknown common gain is removed by mean-normalizing the hidden
// magnitudes before the head — normalization is part of the trained
// forward pass, so digital training and over-the-air inference see the
// same distribution.
//
// This keeps the IoT device as dumb as plain MetaAI (it just transmits)
// and keeps the server cost tiny (an H x R MLP instead of a full network)
// while recovering part of the linear model's accuracy gap to deep
// digital baselines.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "core/deployment.h"
#include "core/training.h"
#include "nn/types.h"

namespace metaai::core {

struct HybridTrainOptions {
  std::size_t hidden_units = 32;
  rf::Modulation modulation = rf::Modulation::kQam256;
  int epochs = 60;
  int batch_size = 64;
  double learning_rate = 8e-3;
  double momentum = 0.95;
  /// CDFA sync injection (same semantics as TrainingOptions).
  bool sync_error_injection = false;
  double sync_gamma_shape = 2.0;
  double sync_gamma_scale_us = 1.85;
  double sync_small_error_mix = 0.25;
  double symbol_rate_hz = 1e6;
};

/// The digital head: logits = V2 * relu(V1 * normalized_magnitudes + b1)
/// + b2.
struct HybridHead {
  RealMatrix v1;  // hidden2 x H
  std::vector<double> b1;
  RealMatrix v2;  // R x hidden2
  std::vector<double> b2;
};

class HybridModel {
 public:
  HybridModel(std::size_t input_dim, std::size_t hidden_units,
              std::size_t num_classes, rf::Modulation modulation);

  std::size_t input_dim() const { return ota_layer_.network.input_dim(); }
  std::size_t hidden_units() const {
    return ota_layer_.network.num_classes();
  }
  std::size_t num_classes() const { return head_.v2.rows(); }
  rf::Modulation modulation() const { return ota_layer_.modulation; }

  /// The over-the-air layer as a deployable TrainedModel (its "classes"
  /// are the hidden units the surface computes).
  const TrainedModel& ota_layer() const { return ota_layer_; }
  const HybridHead& head() const { return head_; }

  void Initialize(Rng& rng);

  /// Joint training of the complex layer and the head; returns
  /// final-epoch mean loss.
  double Train(const nn::RealDataset& train, const HybridTrainOptions& options,
               Rng& rng);

  /// Digital inference.
  int Predict(const std::vector<double>& pixels) const;
  double Evaluate(const nn::RealDataset& test) const;

  /// Head applied to hidden magnitudes measured over the air (any common
  /// positive scale cancels in the normalization).
  int PredictFromHiddenScores(const std::vector<double>& hidden_scores) const;

 private:
  std::vector<double> HeadLogits(const std::vector<double>& magnitudes) const;

  TrainedModel ota_layer_;  // complex layer, H "outputs"
  HybridHead head_;
};

/// Over-the-air accuracy of a hybrid model: the OTA layer is deployed on
/// `surface`/`link_config` (H transmission rounds per inference), the
/// head runs at the server.
double EvaluateHybridOverTheAir(const HybridModel& model,
                                const mts::Metasurface& surface,
                                const sim::OtaLinkConfig& link_config,
                                const nn::RealDataset& test,
                                const sim::SyncModel& sync, Rng& rng,
                                std::size_t max_samples = 0,
                                const DeploymentOptions& options = {});

}  // namespace metaai::core
