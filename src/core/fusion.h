// Multi-sensor late-stage fusion (§3.4, Eqns 11-12).
//
// Linearity makes per-sensor weight blocks independent: transmitting each
// sensor's data in a time-division round with its own weight sequence and
// accumulating the complex partial sums y_r^s before the final magnitude
// is exactly a single linear layer over the concatenated sensor inputs.
// Training therefore happens on the concatenation; deployment reuses the
// standard sequential pipeline with U = sum of the sensors' input sizes —
// one shared metasurface serving all sensors.
#pragma once

#include <cstddef>

#include "core/training.h"
#include "data/multisensor.h"
#include "nn/types.h"

namespace metaai::core {

/// Concatenates the first `num_sensors` sensors of each event into one
/// feature vector (train split when `use_train`, else test).
nn::RealDataset ConcatenateSensors(const data::MultiSensorDataset& dataset,
                                   std::size_t num_sensors, bool use_train);

/// Trains a fused MetaAI model over the first `num_sensors` sensors.
TrainedModel TrainFusedModel(const data::MultiSensorDataset& dataset,
                             std::size_t num_sensors,
                             const TrainingOptions& options, Rng& rng);

/// Digital accuracy of the fused model on the matching concatenated test
/// split.
double EvaluateFusedDigital(const TrainedModel& model,
                            const data::MultiSensorDataset& dataset,
                            std::size_t num_sensors);

}  // namespace metaai::core
