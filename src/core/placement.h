// Deterministic capacity-aware placement (bin packing) for cluster
// serving: assign tenants (items, each with a demand and a per-bin
// compatibility mask) to shards (bins, each with a capacity) so every
// bin's load stays within its capacity.
//
// The solver is first-fit-decreasing: items sorted by demand descending
// (ties broken by original index ascending, so the order — and hence
// the whole placement — is a pure function of the problem), each placed
// on the first compatible bin with room. FFD is the classic 11/9·OPT+1
// heuristic; determinism matters more here than optimality, because
// metaai::fleet replays placements bit for bit across runs and thread
// counts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace metaai::core {

/// One placement instance: `demand[i]` is item i's load, `capacity[b]`
/// is bin b's budget, and `compatible[i][b]` (when non-empty) gates
/// which bins item i may use. An empty `compatible` means every item
/// fits every bin; when present it must be demand.size() rows of
/// capacity.size() columns.
struct PlacementProblem {
  std::vector<double> demand;
  std::vector<double> capacity;
  std::vector<std::vector<bool>> compatible;
};

struct PlacementResult {
  /// bin_of_item[i] = the bin item i landed on.
  std::vector<std::size_t> bin_of_item;
  /// load[b] = sum of demands placed on bin b.
  std::vector<double> load;
};

/// First-fit-decreasing packing. Typed errors: kInvalidArgument for
/// malformed problems (no bins, negative demands/capacities, wrongly
/// shaped compatibility mask), kUnavailable when some item cannot be
/// placed on any compatible bin within capacity (the message names the
/// first unplaceable item).
Result<PlacementResult> PackBins(const PlacementProblem& problem);

}  // namespace metaai::core
