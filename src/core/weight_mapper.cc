#include "core/weight_mapper.h"

#include <cmath>

#include "common/check.h"

namespace metaai::core {
namespace {

// Largest magnitude the solver can reliably reach against `steering`:
// the coherent sum of steering magnitudes times the 2-bit quantization
// factor.
double Reachable(std::span<const sim::Complex> steering) {
  double sum = 0.0;
  for (const auto& s : steering) sum += std::abs(s);
  return 0.9 * sum;
}

double MaxWeightMagnitude(const ComplexMatrix& weights) {
  double max_mag = 0.0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      max_mag = std::max(max_mag, std::abs(weights(r, c)));
    }
  }
  return max_mag;
}

// Environment response expressed in solver units (the steering-sum
// domain): z = tx * (alpha * B + env_raw) * x, so subtracting
// env_raw / alpha from the target B absorbs the environment (Eqn 8).
sim::Complex EnvironmentInSolverUnits(const sim::OtaLink& link,
                                      std::size_t observation) {
  return link.EnvironmentResponse(observation) /
         (link.TxAmplitude() * link.MtsPathAmplitude(observation));
}

}  // namespace

MappedSchedules MapSequential(const ComplexMatrix& weights,
                              const sim::OtaLink& link,
                              const MappingOptions& options) {
  Check(weights.rows() > 0 && weights.cols() > 0, "empty weight matrix");
  Check(link.num_observations() == 1,
        "sequential mapping expects a single-observation link");
  Check(options.target_fraction > 0.0 && options.target_fraction <= 1.0,
        "target fraction must be in (0, 1]");

  const auto steering = link.SteeringVector(0);
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  const double scale =
      options.target_fraction * Reachable(steering) / max_mag;
  const sim::Complex env_offset =
      options.subtract_environment ? EnvironmentInSolverUnits(link, 0)
                                   : sim::Complex{0.0, 0.0};

  MappedSchedules result;
  result.scale = scale;
  double residual_sum = 0.0;
  std::size_t residual_count = 0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    sim::MtsSchedule schedule;
    schedule.reserve(weights.cols());
    for (std::size_t i = 0; i < weights.cols(); ++i) {
      const sim::Complex target = scale * weights(r, i) - env_offset;
      const auto solved =
          mts::SolveSingleTarget(steering, target, options.solver);
      schedule.push_back(solved.codes);
      if (std::abs(target) > 1e-12) {
        residual_sum += solved.residual / std::abs(target);
        ++residual_count;
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.outputs.push_back({static_cast<int>(r)});
  }
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  return result;
}

MappedSchedules MapParallel(const ComplexMatrix& weights,
                            const sim::OtaLink& link,
                            const MappingOptions& options) {
  Check(weights.rows() > 0 && weights.cols() > 0, "empty weight matrix");
  const std::size_t width = link.num_observations();
  Check(width >= 1, "parallel mapping needs observations");
  Check(options.target_fraction > 0.0 && options.target_fraction <= 1.0,
        "target fraction must be in (0, 1]");

  // Steering matrix: one row per observation.
  const std::size_t atoms = link.SteeringVector(0).size();
  ComplexMatrix steering(width, atoms);
  double min_reachable = 0.0;
  for (std::size_t o = 0; o < width; ++o) {
    const auto row = link.SteeringVector(o);
    for (std::size_t m = 0; m < atoms; ++m) steering(o, m) = row[m];
    const double reach = Reachable(row);
    min_reachable = (o == 0) ? reach : std::min(min_reachable, reach);
  }
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  // Serving K targets with one configuration splits the aperture; a
  // conservative 1/width headroom keeps every target reachable.
  const double scale = options.target_fraction * min_reachable /
                       (max_mag * static_cast<double>(width));

  std::vector<sim::Complex> env_offsets(width, sim::Complex{0.0, 0.0});
  if (options.subtract_environment) {
    for (std::size_t o = 0; o < width; ++o) {
      env_offsets[o] = EnvironmentInSolverUnits(link, o);
    }
  }

  MappedSchedules result;
  result.scale = scale;
  const std::size_t classes = weights.rows();
  const std::size_t num_rounds = (classes + width - 1) / width;
  double residual_sum = 0.0;
  std::size_t residual_count = 0;

  for (std::size_t round = 0; round < num_rounds; ++round) {
    std::vector<int> outputs(width, -1);
    for (std::size_t o = 0; o < width; ++o) {
      const std::size_t cls = round * width + o;
      if (cls < classes) outputs[o] = static_cast<int>(cls);
    }
    sim::MtsSchedule schedule;
    schedule.reserve(weights.cols());
    for (std::size_t i = 0; i < weights.cols(); ++i) {
      std::vector<sim::Complex> targets(width);
      for (std::size_t o = 0; o < width; ++o) {
        targets[o] = outputs[o] >= 0
                         ? scale * weights(static_cast<std::size_t>(
                                               outputs[o]),
                                           i) -
                               env_offsets[o]
                         : sim::Complex{0.0, 0.0};
      }
      const auto solved =
          mts::SolveMultiTarget(steering, targets, options.solver);
      schedule.push_back(solved.codes);
      for (std::size_t o = 0; o < width; ++o) {
        if (outputs[o] >= 0 && std::abs(targets[o]) > 1e-12) {
          residual_sum += std::abs(solved.achieved[o] - targets[o]) /
                          std::abs(targets[o]);
          ++residual_count;
        }
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.outputs.push_back(std::move(outputs));
  }
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  return result;
}

}  // namespace metaai::core
