#include "core/weight_mapper.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"
#include "obs/parallel.h"

namespace metaai::core {
namespace {

// Largest magnitude the solver can reliably reach against `steering`:
// the coherent sum of steering magnitudes times the 2-bit quantization
// factor. Masked-out (faulty) atoms contribute nothing to the solve, so
// they must not inflate the reachable aperture either.
double Reachable(std::span<const sim::Complex> steering,
                 std::span<const std::uint8_t> mask) {
  double sum = 0.0;
  for (std::size_t m = 0; m < steering.size(); ++m) {
    if (!mask.empty() && mask[m] == 0) continue;
    sum += std::abs(steering[m]);
  }
  return 0.9 * sum;
}

double MaxWeightMagnitude(const ComplexMatrix& weights) {
  double max_mag = 0.0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      max_mag = std::max(max_mag, std::abs(weights(r, c)));
    }
  }
  return max_mag;
}

// Environment response expressed in solver units (the steering-sum
// domain): z = tx * (alpha * B + env_raw) * x, so subtracting
// env_raw / alpha from the target B absorbs the environment (Eqn 8).
sim::Complex EnvironmentInSolverUnits(const sim::OtaLink& link,
                                      std::size_t observation) {
  return link.EnvironmentResponse(observation) /
         (link.TxAmplitude() * link.MtsPathAmplitude(observation));
}

// Shared input validation + steering resolution for both schemes: the
// per-observation steering the solve runs against is either the link's
// idealized steering or the measured override, shape-checked once here.
ComplexMatrix ResolveSteering(const ComplexMatrix& weights,
                              const sim::OtaLink& link,
                              const MappingOptions& options) {
  Check(weights.rows() > 0 && weights.cols() > 0, "empty weight matrix");
  Check(options.target_fraction > 0.0 && options.target_fraction <= 1.0,
        "target fraction must be in (0, 1]");
  const std::size_t width = link.num_observations();
  Check(width >= 1, "mapping needs observations");
  Check(options.fault_offsets.empty() || options.fault_offsets.size() == width,
        "fault_offsets size must match the observation count");
  const std::size_t atoms = link.SteeringVector(0).size();
  const bool use_override = options.steering_override.rows() > 0;
  if (use_override) {
    Check(options.steering_override.rows() == width &&
              options.steering_override.cols() == atoms,
          "steering_override shape must be num_observations x num_atoms");
  }
  ComplexMatrix steering(width, atoms);
  for (std::size_t o = 0; o < width; ++o) {
    if (use_override) {
      for (std::size_t m = 0; m < atoms; ++m) {
        steering(o, m) = options.steering_override(o, m);
      }
    } else {
      const std::vector<sim::Complex> row = link.SteeringVector(o);
      for (std::size_t m = 0; m < atoms; ++m) steering(o, m) = row[m];
    }
  }
  return steering;
}

// Per-observation offset subtracted from every target: environment
// response (Eqn 8, when enabled) plus measured fault offsets.
std::vector<sim::Complex> ResolveTargetOffsets(const sim::OtaLink& link,
                                               const MappingOptions& options) {
  const std::size_t width = link.num_observations();
  std::vector<sim::Complex> offsets(width, sim::Complex{0.0, 0.0});
  if (options.subtract_environment) {
    for (std::size_t o = 0; o < width; ++o) {
      offsets[o] = EnvironmentInSolverUnits(link, o);
    }
  }
  if (!options.fault_offsets.empty()) {
    for (std::size_t o = 0; o < width; ++o) {
      offsets[o] += options.fault_offsets[o];
    }
  }
  return offsets;
}

// Per-target solve options: a warm-started mapping seeds each
// (round, symbol) solve with the corresponding codes of the nearest
// cached schedule and lets it exit early once a sweep's relative
// improvement drops under the warm-start threshold; cold mappings use
// the caller's solver options untouched (exact legacy behaviour).
mts::SolveOptions SolverFor(const MappingOptions& options,
                            const mts::CachedConfig* warm_from,
                            std::size_t round, std::size_t symbol) {
  mts::SolveOptions solver = options.solver;
  if (warm_from != nullptr) {
    solver.initial_codes = warm_from->rounds[round][symbol];
    solver.min_sweep_improvement = options.warm_start_min_improvement;
  }
  return solver;
}

MappedSchedules MapSequentialImpl(const ComplexMatrix& weights,
                                  const sim::OtaLink& link,
                                  const MappingOptions& options,
                                  const mts::CachedConfig* warm_from) {
  Check(link.num_observations() == 1,
        "sequential mapping expects a single-observation link");
  const ComplexMatrix resolved = ResolveSteering(weights, link, options);
  std::vector<sim::Complex> steering(resolved.cols());
  for (std::size_t m = 0; m < steering.size(); ++m) {
    steering[m] = resolved(0, m);
  }
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  const double scale = options.target_fraction *
                       Reachable(steering, options.solver.atom_mask) / max_mag;
  const sim::Complex env_offset = ResolveTargetOffsets(link, options)[0];

  MappedSchedules result;
  result.scale = scale;
  const std::size_t cols = weights.cols();
  // Per-(output, symbol) solves share no state: fan out one task per
  // flattened (r, i) index, then assemble sequentially in the same index
  // order the serial loop used, so codes *and* the residual float
  // accumulation are bitwise identical for any thread count.
  std::vector<mts::SolveResult> solved(weights.rows() * cols);
  obs::DeterministicParallelFor(solved.size(), [&](std::size_t k) {
    const std::size_t r = k / cols;
    const std::size_t i = k % cols;
    const sim::Complex target = scale * weights(r, i) - env_offset;
    solved[k] = mts::SolveSingleTarget(steering, target,
                                       SolverFor(options, warm_from, r, i));
  });
  double residual_sum = 0.0;
  std::size_t residual_count = 0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    sim::MtsSchedule schedule;
    schedule.reserve(cols);
    for (std::size_t i = 0; i < cols; ++i) {
      const sim::Complex target = scale * weights(r, i) - env_offset;
      mts::SolveResult& solve = solved[r * cols + i];
      result.total_sweeps += solve.sweeps_used;
      schedule.push_back(std::move(solve.codes));
      if (std::abs(target) > 1e-12) {
        residual_sum += solve.residual / std::abs(target);
        ++residual_count;
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.outputs.push_back({static_cast<int>(r)});
  }
  result.warm_started = warm_from != nullptr;
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  return result;
}

MappedSchedules MapParallelImpl(const ComplexMatrix& weights,
                                const sim::OtaLink& link,
                                const MappingOptions& options,
                                const mts::CachedConfig* warm_from) {
  const ComplexMatrix steering = ResolveSteering(weights, link, options);
  const std::size_t width = steering.rows();
  const std::size_t atoms = steering.cols();
  double min_reachable = 0.0;
  {
    std::vector<sim::Complex> row(atoms);
    for (std::size_t o = 0; o < width; ++o) {
      for (std::size_t m = 0; m < atoms; ++m) row[m] = steering(o, m);
      const double reach = Reachable(row, options.solver.atom_mask);
      min_reachable = (o == 0) ? reach : std::min(min_reachable, reach);
    }
  }
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  // Serving K targets with one configuration splits the aperture; a
  // conservative 1/width headroom keeps every target reachable.
  const double scale = options.target_fraction * min_reachable /
                       (max_mag * static_cast<double>(width));

  const std::vector<sim::Complex> env_offsets =
      ResolveTargetOffsets(link, options);

  MappedSchedules result;
  result.scale = scale;
  const std::size_t classes = weights.rows();
  const std::size_t num_rounds = (classes + width - 1) / width;
  double residual_sum = 0.0;
  std::size_t residual_count = 0;

  // Round output assignments are a pure function of (round, width).
  std::vector<std::vector<int>> round_outputs(num_rounds);
  for (std::size_t round = 0; round < num_rounds; ++round) {
    round_outputs[round].assign(width, -1);
    for (std::size_t o = 0; o < width; ++o) {
      const std::size_t cls = round * width + o;
      if (cls < classes) round_outputs[round][o] = static_cast<int>(cls);
    }
  }

  const std::size_t cols = weights.cols();
  auto targets_for = [&](std::size_t round, std::size_t i) {
    std::vector<sim::Complex> targets(width);
    for (std::size_t o = 0; o < width; ++o) {
      const int cls = round_outputs[round][o];
      targets[o] = cls >= 0
                       ? scale * weights(static_cast<std::size_t>(cls), i) -
                             env_offsets[o]
                       : sim::Complex{0.0, 0.0};
    }
    return targets;
  };

  // One task per flattened (round, symbol) index; assembly below walks
  // the same index order as the serial loops so residual accumulation is
  // bitwise identical for any thread count.
  std::vector<mts::SolveResult> solved(num_rounds * cols);
  obs::DeterministicParallelFor(solved.size(), [&](std::size_t k) {
    const std::size_t round = k / cols;
    const std::size_t i = k % cols;
    solved[k] = mts::SolveMultiTarget(steering, targets_for(round, i),
                                      SolverFor(options, warm_from, round, i));
  });

  for (std::size_t round = 0; round < num_rounds; ++round) {
    sim::MtsSchedule schedule;
    schedule.reserve(cols);
    for (std::size_t i = 0; i < cols; ++i) {
      mts::SolveResult& solve = solved[round * cols + i];
      const std::vector<sim::Complex> targets = targets_for(round, i);
      result.total_sweeps += solve.sweeps_used;
      schedule.push_back(std::move(solve.codes));
      for (std::size_t o = 0; o < width; ++o) {
        if (round_outputs[round][o] >= 0 && std::abs(targets[o]) > 1e-12) {
          residual_sum += std::abs(solve.achieved[o] - targets[o]) /
                          std::abs(targets[o]);
          ++residual_count;
        }
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.outputs.push_back(std::move(round_outputs[round]));
  }
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  result.warm_started = warm_from != nullptr;
  return result;
}

MappingScheme ResolveScheme(const MappingOptions& options,
                            const sim::OtaLink& link) {
  if (options.scheme != MappingScheme::kAuto) return options.scheme;
  return link.num_observations() == 1 ? MappingScheme::kSequential
                                      : MappingScheme::kParallel;
}

// ---------------------------------------------------------------------
// Cascade (depth K > 1) mapping. Each (round, symbol) target set runs
// through the alternating cascade solver: the front panel keeps its
// per-symbol schedule while the upper layers are solved jointly with it
// (they also switch per symbol; they just never see faults, masks or the
// mid-symbol flip). The upper steering rows carry the normalizing
// coupling folded in, so the composed cascade response lands directly in
// front-panel solver units and the scale/residual bookkeeping below
// mirrors the single-surface implementations line for line.
// ---------------------------------------------------------------------

// Upper-layer steering matrices (num_observations x atoms_l) with the
// coupling c_l(o) folded into row o; index 0 is layer 1.
std::vector<ComplexMatrix> UpperLayerMatrices(const sim::OtaLink& link) {
  const std::size_t width = link.num_observations();
  std::vector<ComplexMatrix> layers;
  layers.reserve(link.num_layers() - 1);
  for (std::size_t l = 1; l < link.num_layers(); ++l) {
    const std::size_t atoms = link.UpperSteeringVector(l, 0).size();
    ComplexMatrix matrix(width, atoms);
    for (std::size_t o = 0; o < width; ++o) {
      const std::vector<sim::Complex> row = link.UpperSteeringVector(l, o);
      const double coupling = link.UpperCoupling(l, o);
      Check(row.size() == atoms, "upper layer atom count mismatch");
      for (std::size_t m = 0; m < atoms; ++m) matrix(o, m) = coupling * row[m];
    }
    layers.push_back(std::move(matrix));
  }
  return layers;
}

// Focus-gain product of the upper layers at observation `o`: each folded
// row reaches Reachable(row) = coupling_gain at full focus, so the
// product is the deterministic magnitude headroom the cascade adds on
// top of the front panel's aperture.
double UpperGainProduct(const std::vector<ComplexMatrix>& upper,
                        std::size_t o) {
  double gain = 1.0;
  std::vector<sim::Complex> row;
  for (const ComplexMatrix& matrix : upper) {
    row.assign(matrix.row(o), matrix.row(o) + matrix.cols());
    gain *= Reachable(row, {});
  }
  return gain;
}

// Solve options for upper layer `u` of a (round, symbol) cascade solve:
// the caller's budget applies, but masks and manual initial codes are
// front-panel shaped and must not leak upstream. Warm starts seed from
// the cached entry's matching upper schedule.
mts::SolveOptions UpperSolverFor(const MappingOptions& options,
                                 const mts::CachedConfig* warm_from,
                                 std::size_t round, std::size_t symbol,
                                 std::size_t u) {
  mts::SolveOptions solver = options.solver;
  solver.atom_mask.clear();
  solver.initial_codes.clear();
  if (warm_from != nullptr && !warm_from->upper_rounds.empty()) {
    solver.initial_codes = warm_from->upper_rounds[round][u][symbol];
    solver.min_sweep_improvement = options.warm_start_min_improvement;
  }
  return solver;
}

MappedSchedules MapCascadeSequentialImpl(const ComplexMatrix& weights,
                                         const sim::OtaLink& link,
                                         const MappingOptions& options,
                                         const mts::CachedConfig* warm_from) {
  Check(link.num_observations() == 1,
        "sequential mapping expects a single-observation link");
  const ComplexMatrix resolved = ResolveSteering(weights, link, options);
  ComplexMatrix front(1, resolved.cols());
  std::vector<sim::Complex> steering(resolved.cols());
  for (std::size_t m = 0; m < steering.size(); ++m) {
    steering[m] = resolved(0, m);
    front(0, m) = resolved(0, m);
  }
  const std::vector<ComplexMatrix> upper = UpperLayerMatrices(link);
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  const double scale = options.target_fraction *
                       Reachable(steering, options.solver.atom_mask) *
                       UpperGainProduct(upper, 0) / max_mag;
  const sim::Complex env_offset = ResolveTargetOffsets(link, options)[0];
  obs::Count("mapper.cascade_mappings");

  MappedSchedules result;
  result.scale = scale;
  const std::size_t cols = weights.cols();
  const mts::CascadeOptions cascade{.outer_sweeps =
                                        options.cascade_outer_sweeps};
  std::vector<mts::CascadeResult> solved(weights.rows() * cols);
  obs::DeterministicParallelFor(solved.size(), [&](std::size_t k) {
    const std::size_t r = k / cols;
    const std::size_t i = k % cols;
    const sim::Complex target = scale * weights(r, i) - env_offset;
    std::vector<mts::CascadeLayerInput> layers;
    layers.reserve(1 + upper.size());
    layers.push_back({front, SolverFor(options, warm_from, r, i)});
    for (std::size_t u = 0; u < upper.size(); ++u) {
      layers.push_back({upper[u], UpperSolverFor(options, warm_from, r, i, u)});
    }
    const sim::Complex targets[] = {target};
    solved[k] = mts::SolveCascadeMultiTarget(layers, targets, cascade);
  });
  double residual_sum = 0.0;
  std::size_t residual_count = 0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    sim::MtsSchedule schedule;
    schedule.reserve(cols);
    sim::LayerSchedules round_upper(upper.size());
    for (sim::MtsSchedule& layer : round_upper) layer.reserve(cols);
    for (std::size_t i = 0; i < cols; ++i) {
      const sim::Complex target = scale * weights(r, i) - env_offset;
      mts::CascadeResult& solve = solved[r * cols + i];
      result.total_sweeps += solve.total_sweeps;
      schedule.push_back(std::move(solve.codes[0]));
      for (std::size_t u = 0; u < upper.size(); ++u) {
        round_upper[u].push_back(std::move(solve.codes[u + 1]));
      }
      if (std::abs(target) > 1e-12) {
        residual_sum += solve.residual / std::abs(target);
        ++residual_count;
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.upper_rounds.push_back(std::move(round_upper));
    result.outputs.push_back({static_cast<int>(r)});
  }
  result.warm_started = warm_from != nullptr;
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  return result;
}

MappedSchedules MapCascadeParallelImpl(const ComplexMatrix& weights,
                                       const sim::OtaLink& link,
                                       const MappingOptions& options,
                                       const mts::CachedConfig* warm_from) {
  const ComplexMatrix steering = ResolveSteering(weights, link, options);
  const std::size_t width = steering.rows();
  const std::size_t atoms = steering.cols();
  const std::vector<ComplexMatrix> upper = UpperLayerMatrices(link);
  double min_reachable = 0.0;
  {
    std::vector<sim::Complex> row(atoms);
    for (std::size_t o = 0; o < width; ++o) {
      for (std::size_t m = 0; m < atoms; ++m) row[m] = steering(o, m);
      const double reach = Reachable(row, options.solver.atom_mask) *
                           UpperGainProduct(upper, o);
      min_reachable = (o == 0) ? reach : std::min(min_reachable, reach);
    }
  }
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  const double scale = options.target_fraction * min_reachable /
                       (max_mag * static_cast<double>(width));
  const std::vector<sim::Complex> env_offsets =
      ResolveTargetOffsets(link, options);
  obs::Count("mapper.cascade_mappings");

  MappedSchedules result;
  result.scale = scale;
  const std::size_t classes = weights.rows();
  const std::size_t num_rounds = (classes + width - 1) / width;
  double residual_sum = 0.0;
  std::size_t residual_count = 0;

  std::vector<std::vector<int>> round_outputs(num_rounds);
  for (std::size_t round = 0; round < num_rounds; ++round) {
    round_outputs[round].assign(width, -1);
    for (std::size_t o = 0; o < width; ++o) {
      const std::size_t cls = round * width + o;
      if (cls < classes) round_outputs[round][o] = static_cast<int>(cls);
    }
  }

  const std::size_t cols = weights.cols();
  auto targets_for = [&](std::size_t round, std::size_t i) {
    std::vector<sim::Complex> targets(width);
    for (std::size_t o = 0; o < width; ++o) {
      const int cls = round_outputs[round][o];
      targets[o] = cls >= 0
                       ? scale * weights(static_cast<std::size_t>(cls), i) -
                             env_offsets[o]
                       : sim::Complex{0.0, 0.0};
    }
    return targets;
  };

  const mts::CascadeOptions cascade{.outer_sweeps =
                                        options.cascade_outer_sweeps};
  std::vector<mts::CascadeResult> solved(num_rounds * cols);
  obs::DeterministicParallelFor(solved.size(), [&](std::size_t k) {
    const std::size_t round = k / cols;
    const std::size_t i = k % cols;
    std::vector<mts::CascadeLayerInput> layers;
    layers.reserve(1 + upper.size());
    layers.push_back({steering, SolverFor(options, warm_from, round, i)});
    for (std::size_t u = 0; u < upper.size(); ++u) {
      layers.push_back(
          {upper[u], UpperSolverFor(options, warm_from, round, i, u)});
    }
    solved[k] =
        mts::SolveCascadeMultiTarget(layers, targets_for(round, i), cascade);
  });

  for (std::size_t round = 0; round < num_rounds; ++round) {
    sim::MtsSchedule schedule;
    schedule.reserve(cols);
    sim::LayerSchedules round_upper(upper.size());
    for (sim::MtsSchedule& layer : round_upper) layer.reserve(cols);
    for (std::size_t i = 0; i < cols; ++i) {
      mts::CascadeResult& solve = solved[round * cols + i];
      const std::vector<sim::Complex> targets = targets_for(round, i);
      result.total_sweeps += solve.total_sweeps;
      schedule.push_back(std::move(solve.codes[0]));
      for (std::size_t u = 0; u < upper.size(); ++u) {
        round_upper[u].push_back(std::move(solve.codes[u + 1]));
      }
      for (std::size_t o = 0; o < width; ++o) {
        if (round_outputs[round][o] >= 0 && std::abs(targets[o]) > 1e-12) {
          residual_sum += std::abs(solve.achieved[o] - targets[o]) /
                          std::abs(targets[o]);
          ++residual_count;
        }
      }
    }
    result.rounds.push_back(std::move(schedule));
    result.upper_rounds.push_back(std::move(round_upper));
    result.outputs.push_back(std::move(round_outputs[round]));
  }
  result.mean_relative_residual =
      residual_count > 0 ? residual_sum / static_cast<double>(residual_count)
                         : 0.0;
  result.warm_started = warm_from != nullptr;
  return result;
}

MappedSchedules Solve(MappingScheme scheme, const ComplexMatrix& weights,
                      const sim::OtaLink& link, const MappingOptions& options,
                      const mts::CachedConfig* warm_from) {
  if (link.num_layers() > 1) {
    return scheme == MappingScheme::kSequential
               ? MapCascadeSequentialImpl(weights, link, options, warm_from)
               : MapCascadeParallelImpl(weights, link, options, warm_from);
  }
  return scheme == MappingScheme::kSequential
             ? MapSequentialImpl(weights, link, options, warm_from)
             : MapParallelImpl(weights, link, options, warm_from);
}

// Field order is the contract: every input the solve depends on, as raw
// bytes. The family form leaves out the weight *values* (their shape
// stays) so nearest-neighbour warm starts only ever pair mappings that
// differ in nothing but the weights. Bump the tag when the solve
// algorithm itself changes.
std::string BuildMappingKey(const ComplexMatrix& weights,
                            const sim::OtaLink& link,
                            const MappingOptions& options,
                            bool include_weight_bytes) {
  const MappingScheme scheme = ResolveScheme(options, link);
  const ComplexMatrix steering = ResolveSteering(weights, link, options);
  const std::vector<sim::Complex> offsets = ResolveTargetOffsets(link, options);
  mts::ConfigKey key;
  key.Tag("metaai.mapping.v1");
  key.Add(static_cast<std::uint64_t>(scheme));
  key.Add(static_cast<std::uint64_t>(weights.rows()));
  key.Add(static_cast<std::uint64_t>(weights.cols()));
  if (include_weight_bytes) {
    key.AddBytes(weights.data(), weights.size() * sizeof(sim::Complex));
  }
  key.Add(static_cast<std::uint64_t>(steering.rows()));
  key.Add(static_cast<std::uint64_t>(steering.cols()));
  key.AddBytes(steering.data(), steering.size() * sizeof(sim::Complex));
  key.AddBytes(offsets.data(), offsets.size() * sizeof(sim::Complex));
  key.Add(options.target_fraction);
  key.Add(static_cast<std::uint64_t>(options.solver.max_sweeps));
  key.Add(static_cast<std::uint64_t>(options.solver.atom_mask.size()));
  if (!options.solver.atom_mask.empty()) {
    key.AddBytes(options.solver.atom_mask.data(),
                 options.solver.atom_mask.size());
  }
  // Warm-start parameters change which schedule a mapping produces (a
  // warm solve is equivalent within tolerance, not bitwise), so warm
  // and cold configurations must never share cache entries.
  key.Add(options.warm_start_distance);
  key.Add(options.warm_start_min_improvement);
  // Cascade inputs appended only when the link is actually deep: depth-1
  // keys must stay byte-identical to the pre-cascade format so existing
  // caches keep hitting.
  if (link.num_layers() > 1) {
    key.Add(static_cast<std::uint64_t>(link.num_layers()));
    key.Add(static_cast<std::uint64_t>(options.cascade_outer_sweeps));
    for (const ComplexMatrix& folded : UpperLayerMatrices(link)) {
      key.Add(static_cast<std::uint64_t>(folded.rows()));
      key.Add(static_cast<std::uint64_t>(folded.cols()));
      key.AddBytes(folded.data(), folded.size() * sizeof(sim::Complex));
    }
  }
  return std::move(key).Take();
}

// A nearest entry is only usable as a warm start if its schedule has
// exactly the shape this mapping will produce. Same family implies same
// shape; this guards against a caller inserting mismatched entries.
bool WarmShapeMatches(const mts::CachedConfig& candidate,
                      MappingScheme scheme, const ComplexMatrix& weights,
                      const sim::OtaLink& link) {
  const std::size_t width = link.num_observations();
  const std::size_t atoms = link.SteeringVector(0).size();
  const std::size_t expected_rounds =
      scheme == MappingScheme::kSequential
          ? weights.rows()
          : (weights.rows() + width - 1) / width;
  if (candidate.rounds.size() != expected_rounds) return false;
  for (const sim::MtsSchedule& round : candidate.rounds) {
    if (round.size() != weights.cols()) return false;
    for (const std::vector<mts::PhaseCode>& codes : round) {
      if (codes.size() != atoms) return false;
    }
  }
  // Deep links additionally need per-layer upper schedules of matching
  // shape (depth-1 entries must have none).
  if (candidate.upper_rounds.size() !=
      (link.num_layers() > 1 ? expected_rounds : 0)) {
    return false;
  }
  for (const sim::LayerSchedules& round_upper : candidate.upper_rounds) {
    if (round_upper.size() != link.num_layers() - 1) return false;
    for (std::size_t u = 0; u < round_upper.size(); ++u) {
      if (round_upper[u].size() != weights.cols()) return false;
      const std::size_t upper_atoms = link.UpperSteeringVector(u + 1, 0).size();
      for (const std::vector<mts::PhaseCode>& codes : round_upper[u]) {
        if (codes.size() != upper_atoms) return false;
      }
    }
  }
  return true;
}

}  // namespace

std::string MappingCacheKey(const ComplexMatrix& weights,
                            const sim::OtaLink& link,
                            const MappingOptions& options) {
  return BuildMappingKey(weights, link, options,
                         /*include_weight_bytes=*/true);
}

std::string MappingFamilyKey(const ComplexMatrix& weights,
                             const sim::OtaLink& link,
                             const MappingOptions& options) {
  return BuildMappingKey(weights, link, options,
                         /*include_weight_bytes=*/false);
}

std::vector<double> MappingFeatures(const ComplexMatrix& weights) {
  const double max_mag = MaxWeightMagnitude(weights);
  Check(max_mag > 0.0, "all-zero weight matrix");
  std::vector<double> features;
  features.reserve(2 * weights.size());
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      features.push_back(weights(r, c).real() / max_mag);
      features.push_back(weights(r, c).imag() / max_mag);
    }
  }
  return features;
}

MappedSchedules MapWeights(const ComplexMatrix& weights,
                           const sim::OtaLink& link,
                           const MappingOptions& options) {
  const MappingScheme scheme = ResolveScheme(options, link);
  if (options.cache == nullptr) {
    return Solve(scheme, weights, link, options, /*warm_from=*/nullptr);
  }

  const std::string key = MappingCacheKey(weights, link, options);
  if (std::optional<mts::CachedConfig> hit =
          options.cache->LookupOrBegin(key)) {
    MappedSchedules restored;
    restored.rounds = std::move(hit->rounds);
    restored.outputs = std::move(hit->outputs);
    restored.upper_rounds = std::move(hit->upper_rounds);
    restored.scale = hit->scale;
    restored.mean_relative_residual = hit->mean_relative_residual;
    restored.from_cache = true;
    return restored;
  }

  // This thread leads the solve for `key` (singleflight): concurrent
  // mappers of the same key are blocked in LookupOrBegin until Publish,
  // and a failed solve must Abandon so one of them can take over.
  std::string family;
  std::vector<double> features;
  std::optional<mts::CachedConfig> warm;
  MappedSchedules mapped;
  try {
    if (options.warm_start_distance > 0.0) {
      family = MappingFamilyKey(weights, link, options);
      features = MappingFeatures(weights);
      warm = options.cache->LookupNearest(family, features,
                                          options.warm_start_distance);
      if (warm.has_value() &&
          !WarmShapeMatches(*warm, scheme, weights, link)) {
        warm.reset();
      }
      if (warm.has_value()) obs::Count("mapper.warm_starts");
    }
    mapped = Solve(scheme, weights, link, options,
                   warm.has_value() ? &*warm : nullptr);
  } catch (...) {
    options.cache->Abandon(key);
    throw;
  }
  options.cache->Publish(
      key,
      mts::CachedConfig{mapped.rounds, mapped.outputs, mapped.upper_rounds,
                        mapped.scale, mapped.mean_relative_residual},
      std::move(family), std::move(features));
  return mapped;
}

}  // namespace metaai::core
