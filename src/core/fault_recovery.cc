#include "core/fault_recovery.h"

#include <cmath>
#include <functional>
#include <span>
#include <utility>

#include "common/check.h"
#include "mts/wdd.h"
#include "obs/obs.h"

namespace metaai::core {
namespace {

// Static focus configuration for each upper layer of a cascade link:
// layer l solves its observation-0 steering toward the reachable
// magnitude at zero phase (the cascade solver's own initialization), so
// the composed factor U(o) is large and well-conditioned for division.
// Deterministic — no RNG, fixed solver defaults. Empty for depth-1.
std::vector<std::vector<mts::PhaseCode>> FocusUpperCodes(
    const sim::OtaLink& link) {
  std::vector<std::vector<mts::PhaseCode>> codes;
  for (std::size_t l = 1; l < link.num_layers(); ++l) {
    const std::vector<sim::Complex> row = link.UpperSteeringVector(l, 0);
    const sim::Complex focus{mts::ReachableMagnitude(row), 0.0};
    codes.push_back(mts::SolveSingleTarget(row, focus, {}).codes);
  }
  return codes;
}

// Mean measured link response for one repeated pattern, in solver units
// (the steering-sum domain): z = tx * amp * B * x, probed with x = 1.
// On cascade links the upper layers hold `upper_codes` for the whole
// probe and their known composed factor is divided back out, so the
// caller's toggle algebra sees the front panel alone.
std::vector<sim::Complex> MeasureResponse(
    const sim::OtaLink& link, const std::vector<mts::PhaseCode>& pattern,
    std::span<const std::vector<mts::PhaseCode>> upper_codes,
    std::size_t probe_symbols, Rng& rng) {
  const std::vector<sim::Complex> data(probe_symbols,
                                       sim::Complex{1.0, 0.0});
  const sim::MtsSchedule schedule(probe_symbols, pattern);
  sim::LayerSchedules upper;
  for (const std::vector<mts::PhaseCode>& layer : upper_codes) {
    upper.emplace_back(probe_symbols, layer);
  }
  const ComplexMatrix z =
      upper.empty()
          ? link.TransmitSequence(data, schedule, 0.0, rng)
          : link.TransmitSequence(data, schedule, upper, 0.0, rng);
  std::vector<sim::Complex> response(link.num_observations());
  for (std::size_t o = 0; o < response.size(); ++o) {
    sim::Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < probe_symbols; ++i) acc += z(o, i);
    response[o] = acc / (static_cast<double>(probe_symbols) *
                         link.TxAmplitude() * link.MtsPathAmplitude(o));
    if (!upper.empty()) {
      const sim::Complex factor = link.UpperLayerFactor(o, upper_codes);
      Check(std::abs(factor) > 0.0,
            "degenerate upper-layer focus factor in diagnosis");
      response[o] /= factor;
    }
  }
  return response;
}

}  // namespace

FaultDiagnosis DiagnoseDeployment(const Deployment& deployment, Rng& rng,
                                  const FaultDiagnosisConfig& config) {
  Check(config.probe_symbols > 0, "diagnosis needs at least one probe symbol");
  Check(config.stuck_threshold > 0.0 && config.stuck_threshold < 1.0,
        "stuck threshold must be in (0, 1)");
  const sim::OtaLink& link = deployment.link();
  const std::size_t num_obs = link.num_observations();
  const std::size_t atoms = link.SteeringVector(0).size();

  // Idealized steering magnitudes set the expected toggle size per atom.
  std::vector<std::vector<sim::Complex>> ideal(num_obs);
  for (std::size_t o = 0; o < num_obs; ++o) ideal[o] = link.SteeringVector(o);

  // Baseline: the all-zero pattern (upper cascade layers, when present,
  // hold one static focus configuration across the whole diagnosis).
  const std::vector<std::vector<mts::PhaseCode>> upper_codes =
      FocusUpperCodes(link);
  std::vector<mts::PhaseCode> pattern(atoms, 0);
  const std::vector<sim::Complex> baseline =
      MeasureResponse(link, pattern, upper_codes, config.probe_symbols, rng);

  FaultDiagnosis diagnosis;
  diagnosis.healthy_mask.assign(atoms, 1);
  diagnosis.measured_steering = ComplexMatrix(num_obs, atoms);
  diagnosis.offsets.assign(num_obs, sim::Complex{0.0, 0.0});
  diagnosis.probe_transmissions = atoms + 1;

  // Toggle probe per atom: atom m at the pi state flips its contribution
  // sign, so delta = B_m - B0 = -2 s_m for a healthy atom and ~0 for a
  // stuck one (the load never reaches the diode driver).
  for (std::size_t m = 0; m < atoms; ++m) {
    pattern[m] = 2;  // pi
    const std::vector<sim::Complex> toggled =
        MeasureResponse(link, pattern, upper_codes, config.probe_symbols, rng);
    pattern[m] = 0;
    double ratio_sum = 0.0;
    for (std::size_t o = 0; o < num_obs; ++o) {
      const sim::Complex delta = toggled[o] - baseline[o];
      const double expected = 2.0 * std::abs(ideal[o][m]);
      ratio_sum += expected > 0.0 ? std::abs(delta) / expected : 0.0;
      diagnosis.measured_steering(o, m) = -0.5 * delta;
    }
    if (ratio_sum / static_cast<double>(num_obs) < config.stuck_threshold) {
      diagnosis.healthy_mask[m] = 0;
      ++diagnosis.num_stuck;
      for (std::size_t o = 0; o < num_obs; ++o) {
        diagnosis.measured_steering(o, m) = sim::Complex{0.0, 0.0};
      }
    }
  }

  // Static offsets: whatever the baseline holds beyond the healthy-atom
  // prediction (stuck pinned contributions + environment leak + probe
  // noise). ~0 under multipath cancellation.
  for (std::size_t o = 0; o < num_obs; ++o) {
    sim::Complex healthy_sum{0.0, 0.0};
    for (std::size_t m = 0; m < atoms; ++m) {
      if (diagnosis.healthy_mask[m] != 0) {
        healthy_sum += diagnosis.measured_steering(o, m);
      }
    }
    diagnosis.offsets[o] = baseline[o] - healthy_sum;
  }

  const std::size_t healthy = atoms - diagnosis.num_stuck;
  diagnosis.wdd_ratio =
      healthy > 0 ? mts::WeightDistributionDensity(healthy) /
                        mts::WeightDistributionDensity(atoms)
                  : 0.0;

  obs::Count("fault.diagnoses");
  obs::Count("fault.probe_transmissions", diagnosis.probe_transmissions);
  obs::Count("fault.detected", diagnosis.num_stuck);
  obs::SetGauge("fault.wdd_ratio", diagnosis.wdd_ratio);
  if (obs::ProbesEnabled()) {
    // Stuck map as a series (1 = healthy), for offline aperture plots.
    std::vector<double> series(atoms);
    for (std::size_t m = 0; m < atoms; ++m) {
      series[m] = static_cast<double>(diagnosis.healthy_mask[m]);
    }
    obs::Probe({.kind = obs::ProbeKind::kFault,
                .site = "fault.diagnose",
                .values = {{"atoms", static_cast<double>(atoms)},
                           {"stuck", static_cast<double>(diagnosis.num_stuck)},
                           {"wdd_ratio", diagnosis.wdd_ratio},
                           {"probes",
                            static_cast<double>(diagnosis.probe_transmissions)}},
                .series = std::move(series)});
  }
  return diagnosis;
}

namespace {

// Folds a diagnosis into the mapping options shared by both recovery
// overloads.
DeploymentOptions ApplyDiagnosis(DeploymentOptions options,
                                 const FaultDiagnosis& diagnosis) {
  Check(diagnosis.num_stuck < diagnosis.healthy_mask.size(),
        "no healthy atoms left to re-solve over");
  options.mapping.solver.atom_mask = diagnosis.healthy_mask;
  options.mapping.steering_override = diagnosis.measured_steering;
  options.mapping.fault_offsets = diagnosis.offsets;
  // The measured offsets already contain any environment leak; do not
  // subtract the idealized environment a second time.
  options.mapping.subtract_environment = false;
  return options;
}

}  // namespace

Deployment RecoverFromFaults(const TrainedModel& model,
                             const mts::Metasurface& surface,
                             sim::OtaLinkConfig link_config,
                             DeploymentOptions options,
                             const FaultDiagnosis& diagnosis) {
  obs::Count("fault.resolves");
  return Deployment(model, surface, std::move(link_config),
                    ApplyDiagnosis(std::move(options), diagnosis));
}

Deployment RecoverFromFaults(const TrainedModel& model,
                             const mts::LayerGraph& graph,
                             sim::OtaLinkConfig link_config,
                             DeploymentOptions options,
                             const FaultDiagnosis& diagnosis) {
  obs::Count("fault.resolves");
  return Deployment(model, graph, std::move(link_config),
                    ApplyDiagnosis(std::move(options), diagnosis));
}

namespace {

/// Shared diagnose -> re-solve -> evaluate tail of the watchdog entries
/// (polling, alert-driven, graph); `recover` rebuilds the deployment
/// from the diagnosis and `site` labels the kFault probe.
void DiagnoseAndRecover(
    const Deployment& deployment, const nn::RealDataset& test, Rng& rng,
    const FaultWatchdogConfig& config,
    const std::function<Deployment(const FaultDiagnosis&)>& recover,
    const char* site, FaultWatchdogResult& result) {
  const FaultDiagnosis diagnosis =
      DiagnoseDeployment(deployment, rng, config.diagnosis);
  result.report.num_stuck_detected = diagnosis.num_stuck;
  result.report.wdd_ratio = diagnosis.wdd_ratio;
  // Re-solve even when nothing is stuck: the measured steering also
  // repairs drift-induced miscalibration.
  result.recovered.emplace(recover(diagnosis));
  result.report.recovered_accuracy =
      result.recovered->EvaluateAccuracyAtOffset(test, 0.0, rng,
                                                 config.check_samples);
  obs::SetGauge("deploy.recovered_accuracy", result.report.recovered_accuracy);
  if (obs::ProbesEnabled()) {
    obs::Probe(
        {.kind = obs::ProbeKind::kFault,
         .site = site,
         .values = {{"observed_accuracy", result.report.observed_accuracy},
                    {"reference_accuracy", result.report.reference_accuracy},
                    {"recovered_accuracy", result.report.recovered_accuracy},
                    {"stuck", static_cast<double>(diagnosis.num_stuck)},
                    {"wdd_ratio", diagnosis.wdd_ratio}}});
  }
}

}  // namespace

FaultWatchdogResult RunFaultWatchdog(const TrainedModel& model,
                                     const mts::Metasurface& surface,
                                     const sim::OtaLinkConfig& link_config,
                                     const DeploymentOptions& options,
                                     const Deployment& deployment,
                                     const nn::RealDataset& test,
                                     double reference_accuracy, Rng& rng,
                                     const FaultWatchdogConfig& config) {
  FaultWatchdogResult result;
  result.report.reference_accuracy = reference_accuracy;
  result.report.observed_accuracy = deployment.EvaluateAccuracyAtOffset(
      test, 0.0, rng, config.check_samples);
  result.report.tripped =
      reference_accuracy - result.report.observed_accuracy >
      config.accuracy_drop_threshold;
  obs::Count("fault.watchdog_checks");
  if (!result.report.tripped) return result;

  obs::Count("fault.watchdog_trips");
  DiagnoseAndRecover(
      deployment, test, rng, config,
      [&](const FaultDiagnosis& diagnosis) {
        return RecoverFromFaults(model, surface, link_config, options,
                                 diagnosis);
      },
      "fault.watchdog", result);
  return result;
}

FaultWatchdogResult RunFaultWatchdog(const TrainedModel& model,
                                     const mts::LayerGraph& graph,
                                     const sim::OtaLinkConfig& link_config,
                                     const DeploymentOptions& options,
                                     const Deployment& deployment,
                                     const nn::RealDataset& test,
                                     double reference_accuracy, Rng& rng,
                                     const FaultWatchdogConfig& config) {
  FaultWatchdogResult result;
  result.report.reference_accuracy = reference_accuracy;
  result.report.observed_accuracy = deployment.EvaluateAccuracyAtOffset(
      test, 0.0, rng, config.check_samples);
  result.report.tripped =
      reference_accuracy - result.report.observed_accuracy >
      config.accuracy_drop_threshold;
  obs::Count("fault.watchdog_checks");
  if (!result.report.tripped) return result;

  obs::Count("fault.watchdog_trips");
  DiagnoseAndRecover(
      deployment, test, rng, config,
      [&](const FaultDiagnosis& diagnosis) {
        return RecoverFromFaults(model, graph, link_config, options,
                                 diagnosis);
      },
      "fault.watchdog", result);
  return result;
}

FaultWatchdogResult RunFaultWatchdogOnAlert(
    const TrainedModel& model, const mts::Metasurface& surface,
    const sim::OtaLinkConfig& link_config, const DeploymentOptions& options,
    const Deployment& deployment, const nn::RealDataset& test,
    double reference_accuracy, const obs::health::Alert& alert, Rng& rng,
    const FaultWatchdogConfig& config) {
  Check(alert.kind == obs::health::AlertKind::kDriftDetected ||
            alert.severity == obs::health::AlertSeverity::kCritical,
        "alert-driven watchdog expects a drift or critical alert");
  FaultWatchdogResult result;
  result.report.reference_accuracy = reference_accuracy;
  // The trip came from the online health layer, not a spot-check:
  // record the alerting signal's observed value (an accuracy proxy).
  result.report.observed_accuracy = alert.value;
  result.report.tripped = true;
  obs::Count("fault.watchdog_alert_trips");
  DiagnoseAndRecover(
      deployment, test, rng, config,
      [&](const FaultDiagnosis& diagnosis) {
        return RecoverFromFaults(model, surface, link_config, options,
                                 diagnosis);
      },
      "fault.watchdog_alert", result);
  return result;
}

}  // namespace metaai::core
