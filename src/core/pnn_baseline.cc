#include "core/pnn_baseline.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "nn/complex_linear.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

// Element positions: a square grid with lambda/2 pitch, centred on the
// optical axis, at plane height z.
std::vector<rf::Vec3> GridPositions(std::size_t count, double pitch,
                                    double z) {
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  std::vector<rf::Vec3> positions;
  positions.reserve(count);
  const double offset = (static_cast<double>(side) - 1.0) / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto row = static_cast<double>(i / side);
    const auto col = static_cast<double>(i % side);
    positions.push_back(
        {(col - offset) * pitch, (row - offset) * pitch, z});
  }
  return positions;
}

// Free-space coupling between two element planes: spherical-wave Green
// function e^{jkd}/d. `normalization` is chosen by the caller so field
// magnitudes stay O(1) through the stack (spacing / sqrt(fan-in)); a
// global field scale is physically irrelevant for magnitude detection.
ComplexMatrix Coupling(const std::vector<rf::Vec3>& to,
                       const std::vector<rf::Vec3>& from, double k0,
                       double normalization) {
  ComplexMatrix g(to.size(), from.size());
  for (std::size_t r = 0; r < to.size(); ++r) {
    for (std::size_t c = 0; c < from.size(); ++c) {
      const double d = rf::Distance(to[r], from[c]);
      const double phase = k0 * d;
      g(r, c) = normalization / d *
                nn::Complex{std::cos(phase), std::sin(phase)};
    }
  }
  return g;
}

// adjoint: x_bar = A^H y_bar.
std::vector<nn::Complex> AdjointApply(const ComplexMatrix& a,
                                      const std::vector<nn::Complex>& y_bar) {
  std::vector<nn::Complex> x_bar(a.cols(), nn::Complex{0.0, 0.0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const nn::Complex* row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      x_bar[c] += std::conj(row[c]) * y_bar[r];
    }
  }
  return x_bar;
}

}  // namespace

struct StackedPnn::Fields {
  // incoming[l]: field arriving at layer l (before its phase shifts);
  // outgoing[l]: field right after layer l's phase shifts.
  std::vector<std::vector<nn::Complex>> incoming;
  std::vector<std::vector<nn::Complex>> outgoing;
  std::vector<nn::Complex> detectors;
};

StackedPnn::StackedPnn(StackedPnnConfig config) : config_(config) {
  Check(config_.input_dim > 0 && config_.num_classes > 0, "empty dimensions");
  Check(config_.atoms_per_layer > 0, "need atoms");
  Check(config_.num_layers >= 1, "need at least one layer");
  const double lambda = rf::Wavelength(config_.frequency_hz);
  const double spacing =
      config_.layer_spacing_m > 0.0 ? config_.layer_spacing_m : 5.0 * lambda;
  const double k0 = rf::WaveNumber(config_.frequency_hz);
  const double pitch = lambda / 2.0;

  const auto input_plane = GridPositions(config_.input_dim, pitch, 0.0);
  const auto layer_plane =
      GridPositions(config_.atoms_per_layer, pitch, spacing);
  auto next_plane = layer_plane;
  for (auto& p : next_plane) p.z += spacing;
  // Detectors spaced more widely so class outputs decorrelate.
  const auto detector_plane =
      GridPositions(config_.num_classes, 4.0 * lambda, 2.0 * spacing);

  const double in_norm =
      spacing / std::sqrt(static_cast<double>(config_.input_dim));
  const double mid_norm =
      spacing / std::sqrt(static_cast<double>(config_.atoms_per_layer));
  input_coupling_ = Coupling(layer_plane, input_plane, k0, in_norm);
  layer_coupling_ = Coupling(next_plane, layer_plane, k0, mid_norm);
  // Output plane measured from the last layer's position; only relative
  // geometry matters, so reuse the layer->detector offsets.
  auto detectors_rel = detector_plane;
  output_coupling_ = Coupling(detectors_rel, layer_plane, k0, mid_norm);

  thetas_.assign(config_.num_layers,
                 std::vector<double>(config_.atoms_per_layer, 0.0));
}

void StackedPnn::Initialize(Rng& rng) {
  for (auto& layer : thetas_) {
    for (double& theta : layer) theta = rng.Uniform(0.0, 2.0 * M_PI);
  }
}

std::size_t StackedPnn::ParameterCount() const {
  return config_.num_layers * config_.atoms_per_layer;
}

void StackedPnn::Forward(const std::vector<nn::Complex>& x,
                         Fields& fields) const {
  Check(x.size() == config_.input_dim, "input dimension mismatch");
  const std::size_t layers = config_.num_layers;
  fields.incoming.resize(layers);
  fields.outgoing.resize(layers);

  fields.incoming[0] = input_coupling_.Multiply(x);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto& in = fields.incoming[l];
    auto& out = fields.outgoing[l];
    out.resize(in.size());
    for (std::size_t m = 0; m < in.size(); ++m) {
      const double theta = thetas_[l][m];
      out[m] = in[m] * nn::Complex{std::cos(theta), std::sin(theta)};
    }
    if (l + 1 < layers) {
      fields.incoming[l + 1] = layer_coupling_.Multiply(out);
    }
  }
  fields.detectors = output_coupling_.Multiply(fields.outgoing.back());
}

std::vector<double> StackedPnn::ClassScores(
    const std::vector<nn::Complex>& x) const {
  Fields fields;
  Forward(x, fields);
  std::vector<double> scores(fields.detectors.size());
  for (std::size_t r = 0; r < scores.size(); ++r) {
    scores[r] = std::abs(fields.detectors[r]);
  }
  return scores;
}

int StackedPnn::Predict(const std::vector<nn::Complex>& x) const {
  const auto scores = ClassScores(x);
  return static_cast<int>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

double StackedPnn::Train(const nn::ComplexDataset& train, Rng& rng) {
  train.Validate();
  Check(train.dim == config_.input_dim, "dataset dimension mismatch");
  Check(train.num_classes == config_.num_classes,
        "dataset class count mismatch");
  const std::size_t n = train.size();
  Check(n > 0, "empty training set");
  const std::size_t layers = config_.num_layers;
  const std::size_t atoms = config_.atoms_per_layer;

  std::vector<std::vector<double>> gradient(layers,
                                            std::vector<double>(atoms, 0.0));
  std::vector<std::vector<double>> velocity(layers,
                                            std::vector<double>(atoms, 0.0));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  Fields fields;
  double final_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(config_.batch_size));
      for (auto& layer : gradient) {
        std::fill(layer.begin(), layer.end(), 0.0);
      }
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t idx = order[b];
        Forward(train.features[idx], fields);
        // Softmax CE on detector magnitudes.
        std::vector<double> mags(config_.num_classes);
        for (std::size_t r = 0; r < mags.size(); ++r) {
          mags[r] = std::abs(fields.detectors[r]);
        }
        const auto probs = nn::SoftmaxScores(mags);
        const int label = train.labels[idx];
        epoch_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)],
                                         1e-12));
        // Adjoint of the detectors.
        std::vector<nn::Complex> det_bar(config_.num_classes);
        for (std::size_t r = 0; r < det_bar.size(); ++r) {
          double g = probs[r];
          if (static_cast<int>(r) == label) g -= 1.0;
          det_bar[r] = mags[r] > 1e-12
                           ? g * fields.detectors[r] / mags[r]
                           : nn::Complex{0.0, 0.0};
        }
        // Backpropagate through the stack.
        std::vector<nn::Complex> out_bar =
            AdjointApply(output_coupling_, det_bar);
        for (std::size_t l = layers; l-- > 0;) {
          // out = e^{j theta} * in: theta gradient and input adjoint.
          for (std::size_t m = 0; m < atoms; ++m) {
            const nn::Complex j_out =
                nn::Complex{0.0, 1.0} * fields.outgoing[l][m];
            gradient[l][m] += std::real(std::conj(out_bar[m]) * j_out);
          }
          if (l > 0) {
            std::vector<nn::Complex> in_bar(atoms);
            for (std::size_t m = 0; m < atoms; ++m) {
              const double theta = thetas_[l][m];
              in_bar[m] = out_bar[m] *
                          nn::Complex{std::cos(theta), -std::sin(theta)};
            }
            out_bar = AdjointApply(layer_coupling_, in_bar);
          }
        }
      }
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t m = 0; m < atoms; ++m) {
          velocity[l][m] = config_.momentum * velocity[l][m] -
                           config_.learning_rate * gradient[l][m] * inv_batch;
          thetas_[l][m] += velocity[l][m];
        }
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  return final_epoch_loss;
}

double StackedPnn::Evaluate(const nn::ComplexDataset& test) const {
  test.Validate();
  Check(test.dim == config_.input_dim, "dataset dimension mismatch");
  if (test.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += (Predict(test.features[i]) == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace metaai::core
