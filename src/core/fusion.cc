#include "core/fusion.h"

#include "common/check.h"

namespace metaai::core {

nn::RealDataset ConcatenateSensors(const data::MultiSensorDataset& dataset,
                                   std::size_t num_sensors, bool use_train) {
  dataset.Validate();
  Check(num_sensors >= 1 && num_sensors <= dataset.num_sensors(),
        "sensor count out of range");
  const auto& sensors =
      use_train ? dataset.train_sensors : dataset.test_sensors;

  nn::RealDataset out;
  out.num_classes = dataset.num_classes;
  out.dim = 0;
  for (std::size_t s = 0; s < num_sensors; ++s) out.dim += sensors[s].dim;
  out.labels = sensors[0].labels;
  out.features.reserve(sensors[0].size());
  for (std::size_t i = 0; i < sensors[0].size(); ++i) {
    std::vector<double> fused;
    fused.reserve(out.dim);
    for (std::size_t s = 0; s < num_sensors; ++s) {
      const auto& f = sensors[s].features[i];
      fused.insert(fused.end(), f.begin(), f.end());
    }
    out.features.push_back(std::move(fused));
  }
  out.Validate();
  return out;
}

TrainedModel TrainFusedModel(const data::MultiSensorDataset& dataset,
                             std::size_t num_sensors,
                             const TrainingOptions& options, Rng& rng) {
  const nn::RealDataset fused =
      ConcatenateSensors(dataset, num_sensors, /*use_train=*/true);
  return TrainModel(fused, options, rng);
}

double EvaluateFusedDigital(const TrainedModel& model,
                            const data::MultiSensorDataset& dataset,
                            std::size_t num_sensors) {
  const nn::RealDataset fused =
      ConcatenateSensors(dataset, num_sensors, /*use_train=*/false);
  return EvaluateDigital(model, fused);
}

}  // namespace metaai::core
