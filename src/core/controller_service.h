// Controller-side feedback protocol (§4: "when the receiver moves to new
// locations, MetaAI employs a feedback protocol to reconfigure the MTS").
//
// The receiver periodically reports its received signal strength; the
// controller smooths the reports, compares them with the calibrated
// baseline and — when the level drops persistently below threshold —
// runs the recalibration pipeline (beam scan + weight re-solve) and swaps
// in the new deployment. The service keeps an event log so operators can
// audit what triggered each reconfiguration.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "core/recalibration.h"

namespace metaai::core {

struct ControllerServiceConfig {
  /// Windowed-mean RSS drop (dB) that triggers recalibration.
  double rss_drop_threshold_db = 6.0;
  /// Reports averaged before comparing against the baseline.
  std::size_t report_window = 8;
  /// Reports to collect after (re)calibration before re-arming the
  /// trigger (establishes the new baseline).
  std::size_t settle_reports = 8;
  RecalibrationConfig recalibration;
  DeploymentOptions deployment;
};

/// One entry of the service's audit log.
struct ControllerEvent {
  std::uint64_t report_index = 0;
  std::string what;
};

class ControllerService {
 public:
  /// Deploys `model` for `assumed_link` immediately.
  ControllerService(TrainedModel model, const mts::Metasurface& surface,
                    sim::OtaLinkConfig assumed_link,
                    ControllerServiceConfig config = {});

  const Deployment& deployment() const { return *deployment_; }
  std::size_t reconfigurations() const { return reconfigurations_; }
  const std::vector<ControllerEvent>& events() const { return events_; }

  /// Whether the trigger is armed (baseline established, not settling).
  bool armed() const;

  /// Feeds one receiver RSS report (dB). `true_link` is the simulator's
  /// oracle for the beam-scan power probe — on hardware the probe power
  /// comes back over the same feedback channel. Returns true if this
  /// report triggered a reconfiguration.
  bool OnRssReport(double rss_db, const sim::OtaLinkConfig& true_link);

  /// Baseline RSS the trigger compares against (dB); NaN before the
  /// baseline is established.
  double baseline_rss_db() const { return baseline_rss_db_; }

 private:
  void Log(std::string what);

  TrainedModel model_;
  const mts::Metasurface& surface_;
  sim::OtaLinkConfig assumed_link_;
  ControllerServiceConfig config_;
  std::unique_ptr<Deployment> deployment_;

  std::deque<double> window_;
  double baseline_rss_db_ = 0.0;
  bool baseline_set_ = false;
  std::size_t settle_remaining_ = 0;
  std::uint64_t report_index_ = 0;
  std::size_t reconfigurations_ = 0;
  std::vector<ControllerEvent> events_;
};

}  // namespace metaai::core
