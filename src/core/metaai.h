// Umbrella header: the public MetaAI API.
//
// Typical usage (see examples/quickstart.cc):
//
//   auto dataset = metaai::data::MakeMnistLike();
//   metaai::Rng rng(42);
//   auto model = metaai::core::TrainModel(dataset.train, {}, rng);
//
//   metaai::mts::Metasurface surface{metaai::mts::MetasurfaceSpec{}};
//   metaai::sim::OtaLinkConfig link;           // the paper's default setup
//   link.geometry = {...};
//   metaai::core::Deployment deployment(model, surface, link);
//
//   metaai::sim::SyncModel sync(metaai::sim::SyncMode::kCdfa);
//   double accuracy = deployment.EvaluateAccuracy(dataset.test, sync, rng);
#pragma once

#include "common/result.h"      // typed error handling (metaai::Result<T>)
#include "core/channel_estimation.h"  // pilot-based H_e estimation (Eqn 8)
#include "core/controller_service.h"  // RSS-feedback reconfiguration loop
#include "core/deployment.h"    // over-the-air inference + parallelism
#include "core/fault_recovery.h"  // fault diagnosis + graceful degradation
#include "core/fusion.h"        // multi-sensor late fusion
#include "core/hybrid.h"        // OTA linear layer + digital nonlinear head
#include "core/pnn_baseline.h"  // stacked traditional PNN baseline
#include "core/recalibration.h" // receiver mobility / beam-scan pipeline
#include "core/scheduler.h"     // multi-device TDMA over one surface
#include "core/serialization.h" // model + MTS pattern files
#include "core/training.h"      // digital training + robustness schemes
#include "core/placement.h"     // deterministic bin-packing placement
#include "core/weight_mapper.h" // weights -> MTS configurations
#include "fleet/fleet.h"        // sharded surface cluster + front door
#include "mts/config_cache.h"   // solver-result cache shared by tenants
#include "serve/generator.h"    // seeded multi-client request traces
#include "serve/runtime.h"      // batched multi-tenant serving runtime
