#include "core/placement.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace metaai::core {

Result<PlacementResult> PackBins(const PlacementProblem& problem) {
  const std::size_t items = problem.demand.size();
  const std::size_t bins = problem.capacity.size();
  if (bins == 0) {
    return Error{ErrorCode::kInvalidArgument, "placement needs at least one bin"};
  }
  for (std::size_t i = 0; i < items; ++i) {
    if (!(problem.demand[i] >= 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "item " + std::to_string(i) + ": demand must be >= 0"};
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (!(problem.capacity[b] >= 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "bin " + std::to_string(b) + ": capacity must be >= 0"};
    }
  }
  if (!problem.compatible.empty()) {
    if (problem.compatible.size() != items) {
      return Error{ErrorCode::kInvalidArgument,
                   "compatibility mask must have one row per item"};
    }
    for (std::size_t i = 0; i < items; ++i) {
      if (problem.compatible[i].size() != bins) {
        return Error{ErrorCode::kInvalidArgument,
                     "item " + std::to_string(i) +
                         ": compatibility row must have one entry per bin"};
      }
    }
  }

  // First-fit-decreasing over a deterministic order: demand descending,
  // ties broken by original index ascending.
  std::vector<std::size_t> order(items);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.demand[a] > problem.demand[b];
                   });

  PlacementResult result;
  result.bin_of_item.resize(items, 0);
  result.load.resize(bins, 0.0);
  for (const std::size_t item : order) {
    bool placed = false;
    for (std::size_t b = 0; b < bins; ++b) {
      const bool ok_bin =
          problem.compatible.empty() || problem.compatible[item][b];
      if (!ok_bin) continue;
      if (result.load[b] + problem.demand[item] > problem.capacity[b]) {
        continue;
      }
      result.bin_of_item[item] = b;
      result.load[b] += problem.demand[item];
      placed = true;
      break;
    }
    if (!placed) {
      return Error{ErrorCode::kUnavailable,
                   "item " + std::to_string(item) +
                       " (demand " + std::to_string(problem.demand[item]) +
                       ") does not fit on any compatible bin"};
    }
  }
  return result;
}

}  // namespace metaai::core
