// Desired-weights -> metasurface-configuration mapping (§3.2, Eqns 5-8).
//
// The trained network's weight row H_r(t_i) must be realized by the
// surface at symbol time t_i. All weights are scaled by one common
// positive factor (legal: Eqn 4's alpha_p argument — a common scale
// preserves the class ordering) so the largest weight fits inside the
// magnitude the discrete surface can reach, then each (output, symbol)
// target is solved with the coordinate-descent solver. Parallel modes
// (Eqns 9-10) solve all simultaneous targets of a symbol jointly against
// the per-observation steering vectors.
//
// Entry point: MapWeights(weights, link, options). The options'
// MappingScheme selects sequential (one observation, one output per
// round) or parallel (Eqns 9-10, joint solve across the link's K
// observations); kAuto picks from the link's observation count. An
// optional mts::ConfigCache memoizes whole solved mappings by content
// (weights, resolved steering, offsets, solver options) so repeat
// deployments skip the coordinate-descent solve entirely — hits are
// bitwise identical to a fresh solve.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.h"
#include "mts/config_cache.h"
#include "mts/config_solver.h"
#include "sim/link.h"

namespace metaai::core {

/// Which mapping scheme MapWeights runs.
enum class MappingScheme {
  /// Sequential for single-observation links, parallel otherwise.
  kAuto,
  /// One observation, R rounds of U symbols, one output per round.
  kSequential,
  /// ceil(R / K) rounds; within a round one shared configuration per
  /// symbol realizes K different weights jointly (Eqns 9-10).
  kParallel,
};

struct MappingOptions {
  /// Scheme selector for MapWeights (kAuto follows the link shape).
  MappingScheme scheme = MappingScheme::kAuto;
  /// Fraction of the reachable magnitude the largest weight is scaled to.
  double target_fraction = 0.85;
  mts::SolveOptions solver;
  /// Eqn 8: subtract the (known, static) environment response from every
  /// target so the realized channel absorbs the multipath. Only
  /// meaningful when multipath cancellation is off and the environment is
  /// static; the zero-mean cancellation scheme (§3.2) is the robust
  /// alternative and needs no estimation.
  bool subtract_environment = false;
  /// Fault-aware mapping: measured residual offsets in solver units, one
  /// per link observation, subtracted from every target. Used after a
  /// fault diagnosis to absorb the static contribution of stuck atoms
  /// when multipath cancellation is off (with cancellation on, stuck
  /// atoms never flip and cancel like the environment, so the offsets
  /// are ~0 and unnecessary). Empty = no offsets.
  std::vector<sim::Complex> fault_offsets;
  /// When non-empty (num_observations x num_atoms), solve against this
  /// measured steering instead of the link's idealized one — a diagnosis
  /// measures each healthy atom's actual response, which folds in both
  /// device phase errors and aging drift. Empty = idealized steering.
  ComplexMatrix steering_override;
  /// Optional solver-result cache shared across deployments (not owned;
  /// must outlive the mapping call). Null = always solve fresh.
  mts::ConfigCache* cache = nullptr;
  /// Incremental solving: when positive (and a cache is set), an exact
  /// miss searches the cache for the nearest same-family entry within
  /// this RMS distance over the normalized weight features and, on a
  /// nearest hit, warm-starts every per-target solve from that entry's
  /// codes with min_sweep_improvement set below. 0 = off (the default;
  /// keeps cached-vs-uncached mappings bitwise identical). The value
  /// participates in the cache key, so warm and cold configurations
  /// never share entries.
  double warm_start_distance = 0.0;
  /// Early-exit threshold applied to warm-started solves only (see
  /// mts::SolveOptions::min_sweep_improvement). Also part of the key.
  double warm_start_min_improvement = 1e-3;
  /// Cascade (multi-layer link) mappings only: alternating block-
  /// coordinate sweeps per (round, symbol) cascade solve (see
  /// mts::CascadeOptions). Ignored — and excluded from the cache key —
  /// on depth-1 links, so single-surface keys stay byte-stable.
  int cascade_outer_sweeps = 2;
};

struct MappedSchedules {
  /// One MTS schedule per transmission round. Sequential mode: round r
  /// computes output r. Parallel modes: round j computes outputs
  /// j*K .. j*K+K-1 on the link's K observations.
  std::vector<sim::MtsSchedule> rounds;
  /// Output index computed by (round, observation); -1 if that
  /// observation is idle in that round (class count not divisible by K).
  std::vector<std::vector<int>> outputs;
  /// Cascade (depth K > 1) links only: upper_rounds[r][l-1][i] is the
  /// configuration upper layer l holds during symbol i of round r,
  /// solved jointly with rounds[r][i] by the alternating cascade solver.
  /// Empty for single-surface links (the legacy schedule shape).
  std::vector<sim::LayerSchedules> upper_rounds;
  /// Common scale applied to all weights.
  double scale = 0.0;
  /// Mean solver residual relative to the scaled target magnitude.
  double mean_relative_residual = 0.0;
  /// Provenance: true when this mapping was restored from an
  /// mts::ConfigCache hit instead of solved fresh (the serving
  /// runtime's lifecycle traces report it per tenant). Hits are
  /// bitwise identical to a fresh solve; only this flag differs.
  bool from_cache = false;
  /// Total coordinate-descent sweeps spent across every per-target
  /// solve of this mapping (0 when restored from cache). Benches use
  /// this to quantify the work a warm start saves.
  long total_sweeps = 0;
  /// True when the solves were warm-started from a nearest cache entry.
  bool warm_started = false;
};

/// Maps `weights` onto the link's metasurface with the scheme selected
/// by `options.scheme`, consulting `options.cache` when set.
MappedSchedules MapWeights(const ComplexMatrix& weights,
                           const sim::OtaLink& link,
                           const MappingOptions& options = {});

/// Content key MapWeights caches a mapping under (exposed so runtimes
/// can probe/warm a cache without redoing the solve).
std::string MappingCacheKey(const ComplexMatrix& weights,
                            const sim::OtaLink& link,
                            const MappingOptions& options);

/// Family key for nearest-entry warm starts: MappingCacheKey minus the
/// weight bytes. Two mappings share a family exactly when they differ
/// only in weight values (same shape, link, offsets and options), which
/// is what makes a neighbour's schedule a valid warm start.
std::string MappingFamilyKey(const ComplexMatrix& weights,
                             const sim::OtaLink& link,
                             const MappingOptions& options);

/// Scale-invariant feature vector for nearest-entry distance: the
/// weight components normalized by the largest weight magnitude (the
/// mapper's common scale divides out max |w|, so two weight matrices
/// with equal features produce identical solver targets).
std::vector<double> MappingFeatures(const ComplexMatrix& weights);

}  // namespace metaai::core
