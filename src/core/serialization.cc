#include "core/serialization.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.h"

namespace metaai::core {
namespace {

constexpr const char* kModelMagic = "metaai-model-v1";
constexpr const char* kPatternMagic = "metaai-patterns-v1";

rf::Modulation ModulationFromName(const std::string& name) {
  for (const rf::Modulation scheme : rf::AllModulations()) {
    if (rf::ModulationName(scheme) == name) return scheme;
  }
  throw CheckError("unknown modulation in model file: " + name);
}

char HexDigit(unsigned value) {
  return value < 10 ? static_cast<char>('0' + value)
                    : static_cast<char>('a' + value - 10);
}

unsigned HexValue(char digit) {
  if (digit >= '0' && digit <= '9') return static_cast<unsigned>(digit - '0');
  if (digit >= 'a' && digit <= 'f') {
    return static_cast<unsigned>(digit - 'a' + 10);
  }
  throw CheckError("invalid hex digit in pattern file");
}

}  // namespace

void SaveModel(const TrainedModel& model, const std::filesystem::path& path) {
  std::ofstream out(path);
  Check(out.good(), "cannot open model file for writing: " + path.string());
  out << kModelMagic << '\n';
  out << rf::ModulationName(model.modulation) << '\n';
  out << model.num_classes() << ' ' << model.input_dim() << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const ComplexMatrix& w = model.network.weights();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out << w(r, c).real() << ' ' << w(r, c).imag() << '\n';
    }
  }
  out.flush();
  Check(out.good(), "failed writing model file: " + path.string());
}

TrainedModel LoadModel(const std::filesystem::path& path) {
  std::ifstream in(path);
  Check(in.good(), "cannot open model file: " + path.string());
  std::string magic;
  std::getline(in, magic);
  Check(magic == kModelMagic, "not a metaai model file: " + path.string());
  std::string modulation_name;
  std::getline(in, modulation_name);
  const rf::Modulation modulation = ModulationFromName(modulation_name);
  std::size_t classes = 0;
  std::size_t dim = 0;
  in >> classes >> dim;
  Check(in.good() && classes > 0 && dim > 0,
        "malformed model dimensions in " + path.string());

  TrainedModel model{.network = nn::ComplexLinearModel(dim, classes),
                     .modulation = modulation};
  ComplexMatrix& w = model.network.mutable_weights();
  for (std::size_t r = 0; r < classes; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      double re = 0.0;
      double im = 0.0;
      in >> re >> im;
      Check(!in.fail(), "truncated model file: " + path.string());
      w(r, c) = {re, im};
    }
  }
  return model;
}

void SavePatterns(const MappedSchedules& schedules, std::size_t num_atoms,
                  const std::filesystem::path& path) {
  Check(!schedules.rounds.empty(), "no schedules to save");
  Check(num_atoms % 2 == 0, "atom count must be even for hex packing");
  std::ofstream out(path);
  Check(out.good(),
        "cannot open pattern file for writing: " + path.string());
  out << kPatternMagic << '\n';
  out << schedules.rounds.size() << ' ' << schedules.rounds[0].size() << ' '
      << num_atoms << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10)
      << schedules.scale << ' ' << schedules.mean_relative_residual << '\n';
  for (std::size_t round = 0; round < schedules.rounds.size(); ++round) {
    // Outputs computed by this round (one per observation, -1 = idle).
    const auto& outputs = schedules.outputs[round];
    out << outputs.size();
    for (const int o : outputs) out << ' ' << o;
    out << '\n';
    for (const auto& codes : schedules.rounds[round]) {
      Check(codes.size() == num_atoms, "inconsistent config size");
      // Two atoms (2 bits each) per hex digit, atom order preserved.
      std::string line;
      line.reserve(num_atoms / 2);
      for (std::size_t m = 0; m < num_atoms; m += 2) {
        const unsigned nibble = (static_cast<unsigned>(codes[m]) << 2) |
                                static_cast<unsigned>(codes[m + 1]);
        line.push_back(HexDigit(nibble));
      }
      out << line << '\n';
    }
  }
  out.flush();
  Check(out.good(), "failed writing pattern file: " + path.string());
}

MappedSchedules LoadPatterns(const std::filesystem::path& path,
                             std::size_t expected_atoms) {
  std::ifstream in(path);
  Check(in.good(), "cannot open pattern file: " + path.string());
  std::string magic;
  std::getline(in, magic);
  Check(magic == kPatternMagic,
        "not a metaai pattern file: " + path.string());
  std::size_t rounds = 0;
  std::size_t symbols = 0;
  std::size_t atoms = 0;
  in >> rounds >> symbols >> atoms;
  Check(in.good() && rounds > 0 && symbols > 0,
        "malformed pattern header in " + path.string());
  Check(atoms == expected_atoms,
        "pattern file atom count does not match the surface");

  MappedSchedules schedules;
  in >> schedules.scale >> schedules.mean_relative_residual;
  Check(!in.fail(), "malformed pattern scale in " + path.string());
  for (std::size_t round = 0; round < rounds; ++round) {
    std::size_t num_outputs = 0;
    in >> num_outputs;
    Check(!in.fail() && num_outputs > 0, "malformed round outputs");
    std::vector<int> outputs(num_outputs);
    for (int& o : outputs) in >> o;
    Check(!in.fail(), "truncated round outputs");
    in >> std::ws;
    sim::MtsSchedule schedule;
    schedule.reserve(symbols);
    for (std::size_t i = 0; i < symbols; ++i) {
      std::string line;
      std::getline(in, line);
      Check(!in.fail() && line.size() == atoms / 2,
            "malformed pattern line in " + path.string());
      std::vector<mts::PhaseCode> codes(atoms);
      for (std::size_t d = 0; d < line.size(); ++d) {
        const unsigned nibble = HexValue(line[d]);
        codes[2 * d] = static_cast<mts::PhaseCode>(nibble >> 2);
        codes[2 * d + 1] = static_cast<mts::PhaseCode>(nibble & 0x3u);
      }
      schedule.push_back(std::move(codes));
    }
    schedules.rounds.push_back(std::move(schedule));
    schedules.outputs.push_back(std::move(outputs));
  }
  return schedules;
}

}  // namespace metaai::core
