#include "core/serialization.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "common/check.h"

namespace metaai::core {
namespace {

constexpr const char* kModelMagic = "metaai-model-v1";
constexpr const char* kPatternMagic = "metaai-patterns-v1";

std::optional<rf::Modulation> ModulationFromName(const std::string& name) {
  for (const rf::Modulation scheme : rf::AllModulations()) {
    if (rf::ModulationName(scheme) == name) return scheme;
  }
  return std::nullopt;
}

char HexDigit(unsigned value) {
  return value < 10 ? static_cast<char>('0' + value)
                    : static_cast<char>('a' + value - 10);
}

/// -1 for characters outside [0-9a-f].
int HexValue(char digit) {
  if (digit >= '0' && digit <= '9') return digit - '0';
  if (digit >= 'a' && digit <= 'f') return digit - 'a' + 10;
  return -1;
}

Error IoError(const std::string& what, const std::filesystem::path& path) {
  return Error{ErrorCode::kIoError, what + ": " + path.string()};
}

Error ParseError(const std::string& what, const std::filesystem::path& path) {
  return Error{ErrorCode::kParseError, what + ": " + path.string()};
}

}  // namespace

Result<void> TrySaveModel(const TrainedModel& model,
                          const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out.good()) return IoError("cannot open model file for writing", path);
  out << kModelMagic << '\n';
  out << rf::ModulationName(model.modulation) << '\n';
  out << model.num_classes() << ' ' << model.input_dim() << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const ComplexMatrix& w = model.network.weights();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out << w(r, c).real() << ' ' << w(r, c).imag() << '\n';
    }
  }
  // Optional cascade trailer: the loader stops at the exact weight count,
  // so legacy readers ignore it and models without layers stay
  // byte-identical to the pre-cascade format.
  if (!model.layers.empty()) {
    out << "layers " << model.layers.size() << '\n';
    for (const mts::PhysicalLayerSpec& layer : model.layers) {
      const mts::MetasurfaceSpec& s = layer.surface;
      out << s.rows << ' ' << s.cols << ' ' << layer.coupling_gain << ' '
          << s.design_frequency_hz << ' ' << s.fractional_bandwidth << ' '
          << s.fov_deg << ' ' << s.atom_reflection_amplitude << ' '
          << s.supported_bands_hz.size();
      for (const double band : s.supported_bands_hz) out << ' ' << band;
      out << '\n';
    }
  }
  out.flush();
  if (!out.good()) return IoError("failed writing model file", path);
  return Ok();
}

Result<TrainedModel> TryLoadModel(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in.good()) return IoError("cannot open model file", path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kModelMagic) return ParseError("not a metaai model file", path);
  std::string modulation_name;
  std::getline(in, modulation_name);
  const std::optional<rf::Modulation> modulation =
      ModulationFromName(modulation_name);
  if (!modulation.has_value()) {
    return ParseError("unknown modulation '" + modulation_name +
                          "' in model file",
                      path);
  }
  std::size_t classes = 0;
  std::size_t dim = 0;
  in >> classes >> dim;
  if (!in.good() || classes == 0 || dim == 0) {
    return ParseError("malformed model dimensions in", path);
  }

  TrainedModel model{.network = nn::ComplexLinearModel(dim, classes),
                     .modulation = *modulation};
  ComplexMatrix& w = model.network.mutable_weights();
  for (std::size_t r = 0; r < classes; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      double re = 0.0;
      double im = 0.0;
      in >> re >> im;
      if (in.fail()) return ParseError("truncated model file", path);
      w(r, c) = {re, im};
    }
  }

  // Optional cascade trailer; EOF here means a legacy single-surface
  // model (layers stays empty).
  std::string trailer;
  if (in >> trailer) {
    if (trailer != "layers") {
      return ParseError("unexpected trailer '" + trailer + "' in model file",
                        path);
    }
    std::size_t num_layers = 0;
    in >> num_layers;
    if (in.fail() || num_layers == 0) {
      return ParseError("malformed layer count in model file", path);
    }
    for (std::size_t l = 0; l < num_layers; ++l) {
      mts::PhysicalLayerSpec layer;
      std::size_t num_bands = 0;
      in >> layer.surface.rows >> layer.surface.cols >> layer.coupling_gain >>
          layer.surface.design_frequency_hz >>
          layer.surface.fractional_bandwidth >> layer.surface.fov_deg >>
          layer.surface.atom_reflection_amplitude >> num_bands;
      if (in.fail()) return ParseError("truncated layer trailer in", path);
      layer.surface.supported_bands_hz.assign(num_bands, 0.0);
      for (double& band : layer.surface.supported_bands_hz) in >> band;
      if (in.fail()) return ParseError("truncated layer bands in", path);
      model.layers.push_back(std::move(layer));
    }
    // Reject geometrically invalid graphs at load time with a typed
    // error instead of letting construction Check-abort downstream.
    const Result<mts::LayerGraph> graph =
        mts::LayerGraph::TryFromSpecs(model.layers);
    if (!graph.ok()) {
      return Error{ErrorCode::kParseError,
                   "invalid layer trailer: " + graph.error().message};
    }
  }
  return model;
}

Result<void> TrySavePatterns(const MappedSchedules& schedules,
                             std::size_t num_atoms,
                             const std::filesystem::path& path) {
  if (schedules.rounds.empty()) {
    return Error{ErrorCode::kInvalidArgument, "no schedules to save"};
  }
  if (num_atoms % 2 != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "atom count must be even for hex packing, got " +
                     std::to_string(num_atoms)};
  }
  std::ofstream out(path);
  if (!out.good()) {
    return IoError("cannot open pattern file for writing", path);
  }
  out << kPatternMagic << '\n';
  out << schedules.rounds.size() << ' ' << schedules.rounds[0].size() << ' '
      << num_atoms << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10)
      << schedules.scale << ' ' << schedules.mean_relative_residual << '\n';
  for (std::size_t round = 0; round < schedules.rounds.size(); ++round) {
    // Outputs computed by this round (one per observation, -1 = idle).
    const auto& outputs = schedules.outputs[round];
    out << outputs.size();
    for (const int o : outputs) out << ' ' << o;
    out << '\n';
    for (const auto& codes : schedules.rounds[round]) {
      if (codes.size() != num_atoms) {
        return Error{ErrorCode::kInvalidArgument,
                     "inconsistent config size: expected " +
                         std::to_string(num_atoms) + " atoms, got " +
                         std::to_string(codes.size())};
      }
      // Two atoms (2 bits each) per hex digit, atom order preserved.
      std::string line;
      line.reserve(num_atoms / 2);
      for (std::size_t m = 0; m < num_atoms; m += 2) {
        const unsigned nibble = (static_cast<unsigned>(codes[m]) << 2) |
                                static_cast<unsigned>(codes[m + 1]);
        line.push_back(HexDigit(nibble));
      }
      out << line << '\n';
    }
  }
  // Optional cascade trailer: per-round upper-layer schedules, same
  // hex packing. The legacy loader stops at the exact round count, so
  // single-surface pattern files stay byte-identical.
  if (!schedules.upper_rounds.empty()) {
    if (schedules.upper_rounds.size() != schedules.rounds.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "upper schedules must cover every round"};
    }
    const std::size_t num_upper = schedules.upper_rounds[0].size();
    std::vector<std::size_t> upper_atoms(num_upper);
    for (std::size_t u = 0; u < num_upper; ++u) {
      upper_atoms[u] = schedules.upper_rounds[0][u].at(0).size();
      if (upper_atoms[u] == 0 || upper_atoms[u] % 2 != 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "upper layer atom count must be even for hex packing, "
                     "got " +
                         std::to_string(upper_atoms[u])};
      }
    }
    out << "upper " << num_upper;
    for (const std::size_t atoms : upper_atoms) out << ' ' << atoms;
    out << '\n';
    for (const sim::LayerSchedules& round_upper : schedules.upper_rounds) {
      if (round_upper.size() != num_upper) {
        return Error{ErrorCode::kInvalidArgument,
                     "inconsistent upper layer count across rounds"};
      }
      for (std::size_t u = 0; u < num_upper; ++u) {
        if (round_upper[u].size() != schedules.rounds[0].size()) {
          return Error{ErrorCode::kInvalidArgument,
                       "upper schedule symbol count mismatch"};
        }
        for (const auto& codes : round_upper[u]) {
          if (codes.size() != upper_atoms[u]) {
            return Error{ErrorCode::kInvalidArgument,
                         "inconsistent upper config size: expected " +
                             std::to_string(upper_atoms[u]) + " atoms, got " +
                             std::to_string(codes.size())};
          }
          std::string line;
          line.reserve(upper_atoms[u] / 2);
          for (std::size_t m = 0; m < upper_atoms[u]; m += 2) {
            const unsigned nibble = (static_cast<unsigned>(codes[m]) << 2) |
                                    static_cast<unsigned>(codes[m + 1]);
            line.push_back(HexDigit(nibble));
          }
          out << line << '\n';
        }
      }
    }
  }
  out.flush();
  if (!out.good()) return IoError("failed writing pattern file", path);
  return Ok();
}

Result<MappedSchedules> TryLoadPatterns(const std::filesystem::path& path,
                                        std::size_t expected_atoms) {
  std::ifstream in(path);
  if (!in.good()) return IoError("cannot open pattern file", path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kPatternMagic) {
    return ParseError("not a metaai pattern file", path);
  }
  std::size_t rounds = 0;
  std::size_t symbols = 0;
  std::size_t atoms = 0;
  in >> rounds >> symbols >> atoms;
  if (!in.good() || rounds == 0 || symbols == 0) {
    return ParseError("malformed pattern header in", path);
  }
  if (atoms != expected_atoms) {
    return Error{ErrorCode::kParseError,
                 "pattern file atom count " + std::to_string(atoms) +
                     " does not match the surface (" +
                     std::to_string(expected_atoms) + ")"};
  }

  MappedSchedules schedules;
  in >> schedules.scale >> schedules.mean_relative_residual;
  if (in.fail()) return ParseError("malformed pattern scale in", path);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::size_t num_outputs = 0;
    in >> num_outputs;
    if (in.fail() || num_outputs == 0) {
      return ParseError("malformed round outputs in", path);
    }
    std::vector<int> outputs(num_outputs);
    for (int& o : outputs) in >> o;
    if (in.fail()) return ParseError("truncated round outputs in", path);
    in >> std::ws;
    sim::MtsSchedule schedule;
    schedule.reserve(symbols);
    for (std::size_t i = 0; i < symbols; ++i) {
      std::string line;
      std::getline(in, line);
      if (in.fail() || line.size() != atoms / 2) {
        return ParseError("malformed pattern line in", path);
      }
      std::vector<mts::PhaseCode> codes(atoms);
      for (std::size_t d = 0; d < line.size(); ++d) {
        const int nibble = HexValue(line[d]);
        if (nibble < 0) {
          return ParseError("invalid hex digit in pattern file", path);
        }
        codes[2 * d] =
            static_cast<mts::PhaseCode>(static_cast<unsigned>(nibble) >> 2);
        codes[2 * d + 1] =
            static_cast<mts::PhaseCode>(static_cast<unsigned>(nibble) & 0x3u);
      }
      schedule.push_back(std::move(codes));
    }
    schedules.rounds.push_back(std::move(schedule));
    schedules.outputs.push_back(std::move(outputs));
  }

  // Optional cascade trailer; EOF here means a legacy single-surface
  // pattern file (upper_rounds stays empty).
  std::string trailer;
  if (in >> trailer) {
    if (trailer != "upper") {
      return ParseError("unexpected trailer '" + trailer + "' in pattern file",
                        path);
    }
    std::size_t num_upper = 0;
    in >> num_upper;
    if (in.fail() || num_upper == 0) {
      return ParseError("malformed upper layer count in", path);
    }
    std::vector<std::size_t> upper_atoms(num_upper);
    for (std::size_t& count : upper_atoms) {
      in >> count;
      if (in.fail() || count == 0 || count % 2 != 0) {
        return ParseError("malformed upper atom count in", path);
      }
    }
    in >> std::ws;
    for (std::size_t round = 0; round < rounds; ++round) {
      sim::LayerSchedules round_upper(num_upper);
      for (std::size_t u = 0; u < num_upper; ++u) {
        round_upper[u].reserve(symbols);
        for (std::size_t i = 0; i < symbols; ++i) {
          std::string line;
          std::getline(in, line);
          if (in.fail() || line.size() != upper_atoms[u] / 2) {
            return ParseError("malformed upper pattern line in", path);
          }
          std::vector<mts::PhaseCode> codes(upper_atoms[u]);
          for (std::size_t d = 0; d < line.size(); ++d) {
            const int nibble = HexValue(line[d]);
            if (nibble < 0) {
              return ParseError("invalid hex digit in pattern file", path);
            }
            codes[2 * d] = static_cast<mts::PhaseCode>(
                static_cast<unsigned>(nibble) >> 2);
            codes[2 * d + 1] = static_cast<mts::PhaseCode>(
                static_cast<unsigned>(nibble) & 0x3u);
          }
          round_upper[u].push_back(std::move(codes));
        }
      }
      schedules.upper_rounds.push_back(std::move(round_upper));
    }
  }
  return schedules;
}

}  // namespace metaai::core
