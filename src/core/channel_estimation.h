// Pilot-based environment-channel estimation for the Eqn 8 mapping.
//
// The paper's first multipath option solves Phi for (H_des - H_e), which
// "requires disabling the metasurface to estimate H_e". A reflective
// surface cannot be switched off, but it can be *nulled*: the solver can
// find a configuration whose aggregate reflection is ~zero toward the
// receiver. Transmitting known pilot symbols with the surface nulled and
// cancellation disabled then exposes the environment path alone, and the
// least-squares estimate H_e = E[z x*] / E[|x|^2] follows.
//
// The estimate is what MappingOptions::subtract_environment should use in
// a real system; tests verify it converges to the true response and that
// the estimate-driven Eqn 8 mapping matches the oracle one.
#pragma once

#include <complex>

#include "common/rng.h"
#include "mts/config_solver.h"
#include "sim/link.h"

namespace metaai::core {

struct EnvironmentEstimateOptions {
  std::size_t num_pilots = 64;
  /// Solver budget for the nulling configuration.
  mts::SolveOptions solver;
};

struct EnvironmentEstimate {
  /// Estimated environment response (in the same units as
  /// sim::OtaLink::EnvironmentResponse, i.e. including Tx amplitude).
  std::complex<double> response;
  /// Residual MTS reflection of the nulling configuration relative to the
  /// panel's reachable magnitude (diagnostic; small = good null).
  double null_quality = 0.0;
  /// The nulling configuration itself.
  std::vector<mts::PhaseCode> null_codes;
};

/// Estimates the Tx->Rx environment response of `link` by transmitting
/// `num_pilots` known unit-power pilot symbols while the surface plays a
/// nulled configuration. The link must have multipath cancellation
/// DISABLED (the estimate needs to see the environment) and a single
/// observation.
EnvironmentEstimate EstimateEnvironment(
    const sim::OtaLink& link, Rng& rng,
    const EnvironmentEstimateOptions& options = {});

}  // namespace metaai::core
