// Traditional stacked-metasurface PNN baseline (Appendix A.1, Fig 29).
//
// Existing PNNs process all inputs in parallel through L stacked
// transmissive metasurface layers: the field from the input plane
// propagates through fixed free-space coupling matrices (Green functions
// of the plane spacing) and each layer's meta-atoms apply trainable phase
// shifts. Because multiplication and addition happen simultaneously at
// each atom, a single layer cannot realize an arbitrary U x R linear map
// (Eqn 15-18) — accuracy climbs toward the digital LNN as layers stack,
// which is exactly what Fig 29 shows and what MetaAI's sequential
// decomposition makes unnecessary.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "nn/types.h"

namespace metaai::core {

struct StackedPnnConfig {
  std::size_t input_dim = 256;
  std::size_t num_classes = 10;
  std::size_t atoms_per_layer = 64;
  std::size_t num_layers = 3;
  double frequency_hz = 5.25e9;
  /// Plane spacing; 0 = 5 wavelengths.
  double layer_spacing_m = 0.0;
  int epochs = 20;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
};

class StackedPnn {
 public:
  explicit StackedPnn(StackedPnnConfig config);

  const StackedPnnConfig& config() const { return config_; }

  /// Random uniform phase initialization.
  void Initialize(Rng& rng);

  /// Detector magnitudes |o_r| for one input field.
  std::vector<double> ClassScores(const std::vector<nn::Complex>& x) const;

  int Predict(const std::vector<nn::Complex>& x) const;

  /// Gradient training of the layer phases; returns final-epoch loss.
  double Train(const nn::ComplexDataset& train, Rng& rng);

  double Evaluate(const nn::ComplexDataset& test) const;

  /// Trainable parameter count (phases only; the couplings are physics).
  std::size_t ParameterCount() const;

 private:
  struct Fields;  // per-layer intermediate fields (defined in .cc)

  void Forward(const std::vector<nn::Complex>& x, Fields& fields) const;

  StackedPnnConfig config_;
  ComplexMatrix input_coupling_;   // M x U
  ComplexMatrix layer_coupling_;   // M x M (between adjacent layers)
  ComplexMatrix output_coupling_;  // R x M
  std::vector<std::vector<double>> thetas_;  // L x M phases
};

}  // namespace metaai::core
