#include "core/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::core {

std::vector<std::size_t> AllocateSlots(std::span<const std::size_t> pending,
                                       std::size_t budget) {
  std::vector<std::size_t> granted(pending.size(), 0);
  std::size_t remaining = budget;
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending.size() && remaining > 0; ++i) {
      if (granted[i] < pending[i]) {
        ++granted[i];
        --remaining;
        progressed = true;
      }
    }
  }
  obs::Count("scheduler.slot_allocations");
  return granted;
}

namespace {

// The controller config must describe the panel it drives: the zero
// value carries the 256-atom/16-group prototype shape, which used to be
// reused verbatim for every surface, silently mis-budgeting the pattern
// load time on anything that was not 16x16. Re-derive the atom count
// from the surface, rounding the group count down to the nearest
// divisor (the Controller requires atoms % groups == 0). A 256-atom
// surface with the default config is untouched.
mts::ControllerConfig AlignedController(mts::ControllerConfig controller,
                                        std::size_t num_atoms) {
  if (controller.num_atoms == num_atoms) return controller;
  controller.num_atoms = num_atoms;
  std::size_t groups = std::min(controller.num_groups, num_atoms);
  while (groups > 1 && num_atoms % groups != 0) --groups;
  controller.num_groups = groups;
  return controller;
}

}  // namespace

SharedSurfaceScheduler::SharedSurfaceScheduler(
    const mts::Metasurface& surface, std::vector<DeviceSpec> devices,
    SchedulerConfig config)
    : config_(std::move(config)) {
  Init(surface, /*graph=*/nullptr, std::move(devices));
}

SharedSurfaceScheduler::SharedSurfaceScheduler(const mts::LayerGraph& graph,
                                               std::vector<DeviceSpec> devices,
                                               SchedulerConfig config)
    : config_(std::move(config)) {
  Init(graph.front(), &graph, std::move(devices));
}

void SharedSurfaceScheduler::Init(const mts::Metasurface& surface,
                                  const mts::LayerGraph* graph,
                                  std::vector<DeviceSpec> devices) {
  Check(!devices.empty(), "scheduler needs at least one device");
  Check(config_.symbol_rate_hz > 0.0, "symbol rate must be positive");
  Check(config_.guard_interval_s >= 0.0, "negative guard interval");

  const obs::ScopedSpan span = obs::Span("scheduler.build");

  // The controller streams 2 patterns per symbol (mid-symbol flip) for
  // every device in turn; the frame is feasible iff the controller can
  // sustain that rate at all (slots never overlap in TDMA).
  config_.controller =
      AlignedController(config_.controller, surface.num_atoms());
  const mts::Controller controller(config_.controller);
  const bool sustainable = controller.CanSustain(config_.symbol_rate_hz, 2);
  obs::SetGauge("scheduler.switch_utilization",
                2.0 * config_.symbol_rate_hz / controller.MaxSwitchRate());
  if (!sustainable) obs::Count("scheduler.budget_violations");
  Check(sustainable,
        "controller cannot sustain the mid-symbol flip at this symbol "
        "rate");

  static const obs::HistogramSpec kSlotBuckets =
      obs::HistogramSpec::Exponential(1e-4, 2.0, 16);
  const double symbol_period_s = 1.0 / config_.symbol_rate_hz;
  double cursor_s = 0.0;
  for (DeviceSpec& spec : devices) {
    names_.push_back(spec.name);
    spec.link.symbol_rate_hz = config_.symbol_rate_hz;
    deployments_.push_back(
        graph != nullptr
            ? std::make_unique<Deployment>(spec.model, *graph, spec.link,
                                           spec.options)
            : std::make_unique<Deployment>(spec.model, surface, spec.link,
                                           spec.options));
    const Deployment& deployment = *deployments_.back();
    const std::size_t rounds = deployment.RoundsPerInference();
    const std::size_t symbols =
        deployment.schedules().rounds.front().size();
    const double duration =
        static_cast<double>(rounds) * static_cast<double>(symbols) *
        symbol_period_s;
    frame_.push_back({.device = spec.name,
                      .start_s = cursor_s,
                      .duration_s = duration,
                      .rounds = rounds,
                      .symbols_per_round = symbols});
    obs::Observe("scheduler.slot_duration_s", duration, kSlotBuckets);
    cursor_s += duration + config_.guard_interval_s;
  }
  obs::Count("scheduler.frames_built");
  obs::SetGauge("scheduler.devices", static_cast<double>(frame_.size()));
  obs::SetGauge("scheduler.frame_duration_s", FrameDuration());
  obs::SetGauge("scheduler.guard_fraction",
                static_cast<double>(frame_.size()) * config_.guard_interval_s /
                    FrameDuration());
}

const Deployment& SharedSurfaceScheduler::deployment(
    std::size_t device) const {
  CheckIndex(device, deployments_.size(), "device");
  return *deployments_[device];
}

const std::string& SharedSurfaceScheduler::device_name(
    std::size_t device) const {
  CheckIndex(device, names_.size(), "device");
  return names_[device];
}

std::vector<ScheduledSlot> SharedSurfaceScheduler::BuildFrame(
    std::span<const std::size_t> inferences) const {
  Check(inferences.size() == deployments_.size(),
        "inference counts must match the device count");
  const double symbol_period_s = 1.0 / config_.symbol_rate_hz;
  std::vector<ScheduledSlot> frame;
  double cursor_s = 0.0;
  for (std::size_t i = 0; i < inferences.size(); ++i) {
    if (inferences[i] == 0) continue;
    const ScheduledSlot& canonical = frame_[i];
    const double duration = static_cast<double>(inferences[i]) *
                            static_cast<double>(canonical.rounds) *
                            static_cast<double>(canonical.symbols_per_round) *
                            symbol_period_s;
    frame.push_back({.device = names_[i],
                     .start_s = cursor_s,
                     .duration_s = duration,
                     .rounds = canonical.rounds,
                     .symbols_per_round = canonical.symbols_per_round,
                     .batch = inferences[i]});
    cursor_s += duration + config_.guard_interval_s;
  }
  return frame;
}

double SharedSurfaceScheduler::FrameDuration() const {
  const ScheduledSlot& last = frame_.back();
  return last.start_s + last.duration_s + config_.guard_interval_s;
}

double SharedSurfaceScheduler::PerDeviceRate() const {
  return 1.0 / FrameDuration();
}

int SharedSurfaceScheduler::Classify(std::size_t device,
                                     const std::vector<double>& pixels,
                                     double mts_clock_offset_us,
                                     Rng& rng) const {
  CheckIndex(device, deployments_.size(), "device");
  return deployments_[device]->Classify(pixels, mts_clock_offset_us, rng);
}

SoftDecision SharedSurfaceScheduler::ClassifyWithMargin(
    std::size_t device, const std::vector<double>& pixels,
    double mts_clock_offset_us, Rng& rng) const {
  CheckIndex(device, deployments_.size(), "device");
  return deployments_[device]->ClassifyWithMargin(pixels, mts_clock_offset_us,
                                                  rng);
}

double SharedSurfaceScheduler::EvaluateDevice(std::size_t device,
                                              const nn::RealDataset& test,
                                              const sim::SyncModel& sync,
                                              Rng& rng,
                                              std::size_t max_samples) const {
  CheckIndex(device, deployments_.size(), "device");
  return deployments_[device]->EvaluateAccuracy(test, sync, rng,
                                                max_samples);
}

}  // namespace metaai::core
