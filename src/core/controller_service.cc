#include "core/controller_service.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace metaai::core {

ControllerService::ControllerService(TrainedModel model,
                                     const mts::Metasurface& surface,
                                     sim::OtaLinkConfig assumed_link,
                                     ControllerServiceConfig config)
    : model_(std::move(model)),
      surface_(surface),
      assumed_link_(std::move(assumed_link)),
      config_(std::move(config)) {
  Check(config_.report_window > 0, "report window must be positive");
  Check(config_.rss_drop_threshold_db > 0.0,
        "drop threshold must be positive");
  deployment_ = std::make_unique<Deployment>(model_, surface_, assumed_link_,
                                             config_.deployment);
  settle_remaining_ = config_.settle_reports;
  Log("deployed initial mapping");
}

bool ControllerService::armed() const {
  return baseline_set_ && settle_remaining_ == 0;
}

void ControllerService::Log(std::string what) {
  events_.push_back({report_index_, std::move(what)});
}

bool ControllerService::OnRssReport(double rss_db,
                                    const sim::OtaLinkConfig& true_link) {
  ++report_index_;
  window_.push_back(rss_db);
  if (window_.size() > config_.report_window) window_.pop_front();

  if (window_.size() < config_.report_window) return false;
  const double mean =
      std::accumulate(window_.begin(), window_.end(), 0.0) /
      static_cast<double>(window_.size());

  if (settle_remaining_ > 0) {
    --settle_remaining_;
    if (settle_remaining_ == 0) {
      baseline_rss_db_ = mean;
      baseline_set_ = true;
      Log("baseline established at " + std::to_string(mean) + " dB");
    }
    return false;
  }
  if (!baseline_set_) return false;

  if (mean >= baseline_rss_db_ - config_.rss_drop_threshold_db) {
    return false;
  }

  // Persistent drop: the receiver moved. Re-scan, re-solve, redeploy.
  Log("RSS drop detected (" + std::to_string(mean) + " dB vs baseline " +
      std::to_string(baseline_rss_db_) + " dB): recalibrating");
  auto result = RecalibrateForReceiver(model_, surface_, assumed_link_,
                                       true_link, config_.deployment,
                                       config_.recalibration);
  assumed_link_.geometry.rx_angle_rad = result.report.estimated_angle_rad;
  deployment_ =
      std::make_unique<Deployment>(std::move(result.deployment));
  ++reconfigurations_;
  Log("redeployed for bearing " +
      std::to_string(result.report.estimated_angle_rad) + " rad (latency " +
      std::to_string(result.report.total_latency_s * 1e3) + " ms)");

  // Re-establish the baseline with fresh reports.
  window_.clear();
  baseline_set_ = false;
  settle_remaining_ = config_.settle_reports;
  return true;
}

}  // namespace metaai::core
