#include "core/training.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/encoding.h"
#include "obs/obs.h"

namespace metaai::core {

void CyclicShift(std::vector<nn::Complex>& symbols, std::size_t shift) {
  if (symbols.empty()) return;
  shift %= symbols.size();
  if (shift == 0) return;
  // Left rotation: element j takes the value of element j + shift. A
  // metasurface that lags the data by `shift` symbols applies weight
  // w_{i-shift} to data x_i, i.e. the network effectively sees the data
  // advanced by `shift` — which is exactly this rotation.
  std::rotate(symbols.begin(),
              symbols.begin() + static_cast<std::ptrdiff_t>(shift),
              symbols.end());
}

TrainedModel TrainModel(const nn::RealDataset& train,
                        const TrainingOptions& options, Rng& rng) {
  train.Validate();
  Check(options.symbol_rate_hz > 0.0, "symbol rate must be positive");
  const obs::ScopedSpan span = obs::Span("train.model");
  obs::Count("train.sessions");
  obs::Count("train.samples", train.size());
  const nn::ComplexDataset encoded =
      data::EncodeDataset(train, options.modulation);

  TrainedModel model{
      .network = nn::ComplexLinearModel(train.dim, train.num_classes),
      .modulation = options.modulation};
  model.network.Initialize(rng);

  nn::ComplexTrainOptions optimizer;
  optimizer.epochs = options.epochs;
  optimizer.batch_size = options.batch_size;
  optimizer.learning_rate = options.learning_rate;
  optimizer.momentum = options.momentum;
  optimizer.output_noise_variance = options.output_noise_variance;

  const bool shift_inject = options.sync_error_injection;
  const bool noise_inject = options.input_noise_variance > 0.0;
  if (shift_inject || noise_inject) {
    const double shape = options.sync_gamma_shape;
    const double scale = options.sync_gamma_scale_us;
    const double small_mix = options.sync_small_error_mix;
    const double symbols_per_us = options.symbol_rate_hz * 1e-6;
    const double input_noise = options.input_noise_variance;
    optimizer.input_augment = [=](std::vector<nn::Complex>& x, Rng& r) {
      if (shift_inject) {
        // Gamma-distributed residual sync error, converted to whole
        // symbols (the injector of Fig 13a), mixed with occasional small
        // errors so on-time detections stay in distribution.
        const double error_us = r.Bernoulli(small_mix)
                                    ? r.Uniform(0.0, scale)
                                    : r.Gamma(shape, scale);
        const auto shift = static_cast<std::size_t>(
            std::llround(error_us * symbols_per_us));
        CyclicShift(x, shift);
      }
      if (noise_inject) {
        // "Introduce different noise levels in advance" (§3.5.2): each
        // sample sees a random noise level up to 2x the nominal variance,
        // so the model is robust across the whole SNR range it may meet.
        const double variance = r.Uniform(0.0, 2.0 * input_noise);
        for (nn::Complex& v : x) v += r.ComplexNormal(variance);
      }
    };
  }

  model.network.Train(encoded, optimizer, rng);
  return model;
}

double EvaluateDigital(const TrainedModel& model,
                       const nn::RealDataset& test) {
  const nn::ComplexDataset encoded =
      data::EncodeDataset(test, model.modulation);
  return model.network.Evaluate(encoded);
}

}  // namespace metaai::core
