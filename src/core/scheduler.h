// Multi-device time-division scheduling over one shared metasurface.
//
// The paper positions the single shared surface as serving many IoT
// devices ("can be shared across multiple IoT devices", §6) — different
// transmitters, different tasks, one panel. The scheduler owns one
// deployment per device, interleaves their transmission rounds in TDMA
// frames, and verifies the whole frame against the controller's pattern
// throughput (a 2.56 MHz switching budget shared by everyone).
//
// Frame layout: round-robin over devices; each device's slot carries one
// full inference (all of its transmission rounds back to back, plus a
// guard interval for the energy detector to re-arm).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/deployment.h"
#include "mts/controller.h"

namespace metaai::core {

struct DeviceSpec {
  std::string name;
  TrainedModel model;
  /// Per-device link (geometry/environment may differ per device).
  sim::OtaLinkConfig link;
  DeploymentOptions options;
};

struct SchedulerConfig {
  double symbol_rate_hz = 1e6;
  /// Guard between device slots (detector re-arm + MCU turnaround).
  double guard_interval_s = 20e-6;
  /// Control-plane model for the shared (front) surface. The atom count
  /// is re-derived from the actual panel at construction — the zero
  /// value describes the 256-atom prototype and previously leaked onto
  /// every surface shape, mis-budgeting the pattern load time. Group
  /// count rounds down to the nearest divisor when the shape changes.
  mts::ControllerConfig controller;
};

/// One device's slot inside the TDMA frame.
struct ScheduledSlot {
  std::string device;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::size_t rounds = 0;
  std::size_t symbols_per_round = 0;
  /// Inferences served back to back inside this slot (batching: the
  /// guard interval is paid once per slot, not once per inference).
  std::size_t batch = 1;
};

/// Fair round-robin slot allocation: grants at most `budget` inferences
/// across devices, one per device per pass, so a device with a deep
/// backlog cannot monopolize the frame. granted[i] <= pending[i] and
/// sum(granted) == min(budget, sum(pending)). Pure and deterministic.
std::vector<std::size_t> AllocateSlots(std::span<const std::size_t> pending,
                                       std::size_t budget);

class SharedSurfaceScheduler {
 public:
  /// Builds one deployment per device on the shared `surface`. Throws if
  /// the combined schedule exceeds the controller's switching budget.
  SharedSurfaceScheduler(const mts::Metasurface& surface,
                         std::vector<DeviceSpec> devices,
                         SchedulerConfig config = {});

  /// Shares a whole surface cascade across devices: every deployment is
  /// built over `graph` (which must outlive the scheduler). The
  /// controller budget still gates the schedule-driven front panel —
  /// upper layers also switch per symbol and are assumed to have their
  /// own controllers. A depth-1 graph reproduces the surface overload
  /// bit for bit.
  SharedSurfaceScheduler(const mts::LayerGraph& graph,
                         std::vector<DeviceSpec> devices,
                         SchedulerConfig config = {});

  std::size_t num_devices() const { return deployments_.size(); }
  const Deployment& deployment(std::size_t device) const;
  const std::string& device_name(std::size_t device) const;

  /// The TDMA frame: one slot per device, in order.
  const std::vector<ScheduledSlot>& frame() const { return frame_; }

  const SchedulerConfig& config() const { return config_; }

  /// Builds a batched TDMA frame carrying `inferences[i]` back-to-back
  /// inferences for device i (devices with zero pending inferences get
  /// no slot and pay no guard interval). Used by the serving runtime;
  /// does not replace the canonical one-inference-per-device frame().
  std::vector<ScheduledSlot> BuildFrame(
      std::span<const std::size_t> inferences) const;

  /// Total frame duration: each device gets one inference per frame.
  double FrameDuration() const;

  /// Inferences per second each device receives.
  double PerDeviceRate() const;

  /// Classifies one sample for `device` (its slot of the frame).
  int Classify(std::size_t device, const std::vector<double>& pixels,
               double mts_clock_offset_us, Rng& rng) const;

  /// Classification plus the soft-decision margin (see
  /// Deployment::ClassifyWithMargin); consumes the same RNG draws as
  /// Classify.
  SoftDecision ClassifyWithMargin(std::size_t device,
                                  const std::vector<double>& pixels,
                                  double mts_clock_offset_us, Rng& rng) const;

  /// Per-device accuracy over its test set.
  double EvaluateDevice(std::size_t device, const nn::RealDataset& test,
                        const sim::SyncModel& sync, Rng& rng,
                        std::size_t max_samples = 0) const;

 private:
  /// Shared constructor body; `graph` is null for single-surface use.
  void Init(const mts::Metasurface& surface, const mts::LayerGraph* graph,
            std::vector<DeviceSpec> devices);

  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  std::vector<ScheduledSlot> frame_;
  SchedulerConfig config_;
};

}  // namespace metaai::core
