// Metasurface control-plane model (§4 "Metasurface Prototype and Control").
//
// The prototype drives 256 atoms from an STM32: the atoms are divided into
// 16 groups, each group's 16 atoms loaded through a chain of four
// SN74LV595 shift registers (2 bits/atom = 32 bits per chain), with groups
// loaded in parallel. This bounds how fast full coding patterns can be
// streamed; the paper quotes a maximum of 2.56 MHz patterns/sec, which
// must be at least 2x the symbol rate for the mid-symbol flip of the
// multipath-cancellation scheme.
#pragma once

#include <cstddef>
#include <vector>

#include "mts/meta_atom.h"

namespace metaai::mts {

struct ControllerConfig {
  std::size_t num_atoms = 256;
  std::size_t num_groups = 16;
  /// Serial clock of each shift-register chain.
  double shift_clock_hz = 85e6;
  /// Overhead per pattern commit (latch + MCU dispatch), seconds.
  double latch_overhead_s = 2e-9;
  /// Energy drawn per full-pattern reconfiguration, joules. Chosen so the
  /// per-inference MTS energy matches Table 2's 2.353 mJ at 2x1 Msym/s
  /// switching over a 256-symbol MNIST transmission (times 10 outputs).
  double energy_per_pattern_j = 4.6e-7;
  /// Static bias power of the PIN diode array, watts.
  double static_power_w = 0.0;
};

class Controller {
 public:
  explicit Controller(ControllerConfig config = {});

  const ControllerConfig& config() const { return config_; }

  /// Bits shifted per group per pattern (2 bits per atom).
  std::size_t BitsPerGroup() const;

  /// Seconds to load + latch one full pattern (groups load in parallel).
  double PatternLoadTime() const;

  /// Maximum sustainable full-pattern switching rate, patterns/second.
  double MaxSwitchRate() const;

  /// True if the controller can stream `patterns_per_symbol` patterns per
  /// symbol at `symbol_rate_hz` (e.g. 2 for the mid-symbol flip).
  bool CanSustain(double symbol_rate_hz, int patterns_per_symbol) const;

  /// Energy to play a schedule of `num_patterns` over `duration_s`.
  double ScheduleEnergy(std::size_t num_patterns, double duration_s) const;

 private:
  ControllerConfig config_;
};

}  // namespace metaai::mts
