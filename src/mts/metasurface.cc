#include "mts/metasurface.h"

#include <cmath>

#include "common/check.h"
#include "rf/channel.h"

namespace metaai::mts {

MetasurfaceSpec DualBandSpec() {
  MetasurfaceSpec spec;
  spec.design_frequency_hz = 5.0e9;
  spec.supported_bands_hz = {2.4e9, 5.0e9};
  return spec;
}

MetasurfaceSpec SingleBandSpec() {
  MetasurfaceSpec spec;
  spec.design_frequency_hz = 3.5e9;
  spec.supported_bands_hz = {3.5e9};
  return spec;
}

Metasurface::Metasurface(MetasurfaceSpec spec)
    : spec_(std::move(spec)),
      spacing_m_(rf::Wavelength(spec_.design_frequency_hz) / 2.0),
      codes_(spec_.rows * spec_.cols, PhaseCode{0}) {
  Check(spec_.rows > 0 && spec_.cols > 0, "metasurface needs atoms");
  Check(spec_.design_frequency_hz > 0.0, "invalid design frequency");
  Check(!spec_.supported_bands_hz.empty(), "no supported bands");
}

PhaseCode Metasurface::code(std::size_t atom) const {
  CheckIndex(atom, codes_.size(), "atom");
  return codes_[atom];
}

void Metasurface::SetCode(std::size_t atom, PhaseCode code) {
  CheckIndex(atom, codes_.size(), "atom");
  Check(code < kNumPhaseStates, "phase code out of range");
  codes_[atom] = code;
}

void Metasurface::SetAllCodes(std::span<const PhaseCode> codes) {
  Check(codes.size() == codes_.size(), "code count mismatch");
  for (const PhaseCode c : codes) Check(c < kNumPhaseStates, "bad code");
  codes_.assign(codes.begin(), codes.end());
}

void Metasurface::FlipAllPi() {
  for (PhaseCode& c : codes_) c = OppositeCode(c);
}

bool Metasurface::SupportsFrequency(double frequency_hz) const {
  for (const double band : spec_.supported_bands_hz) {
    if (std::abs(frequency_hz / band - 1.0) <= spec_.fractional_bandwidth) {
      return true;
    }
  }
  return false;
}

Complex Metasurface::PathPhasor(std::size_t atom, const LinkGeometry& geometry,
                                double freq_offset_hz) const {
  CheckIndex(atom, codes_.size(), "atom");
  const double k0 = rf::WaveNumber(geometry.frequency_hz + freq_offset_hz);
  // Atom position along the azimuth axis of the panel; rows are at equal
  // height with the endpoints (paper setup), so only columns create path
  // differences under far field (Eqn 6).
  const auto col = static_cast<double>(atom % spec_.cols);
  const double offset =
      col * spacing_m_ *
      (std::sin(geometry.tx_angle_rad) + std::sin(geometry.rx_angle_rad));
  const double common =
      k0 * (geometry.tx_distance_m + geometry.rx_distance_m);
  const double phase = common - k0 * offset;
  return {std::cos(phase), std::sin(phase)};
}

double Metasurface::ElementPattern(double angle_rad) const {
  const double angle = std::abs(angle_rad);
  if (angle >= M_PI / 2.0) return 0.0;
  // Broad cosine element factor inside the FoV...
  double gain = std::sqrt(std::cos(angle));
  // ...with a sharp additional rolloff beyond the FoV edge.
  const double fov = rf::DegToRad(spec_.fov_deg);
  if (angle > fov) {
    const double excess = (angle - fov) / rf::DegToRad(13.0);
    gain *= std::exp(-excess * excess);
  }
  return gain;
}

std::vector<Complex> Metasurface::SteeringVector(const LinkGeometry& geometry,
                                                 double freq_offset_hz) const {
  const double pattern = ElementPattern(geometry.tx_angle_rad) *
                         ElementPattern(geometry.rx_angle_rad);
  std::vector<Complex> steering(codes_.size());
  for (std::size_t m = 0; m < codes_.size(); ++m) {
    steering[m] = pattern * PathPhasor(m, geometry, freq_offset_hz);
  }
  return steering;
}

double Metasurface::PathAmplitude(const LinkGeometry& geometry) const {
  if (!SupportsFrequency(geometry.frequency_hz)) return 0.0;
  const double lambda = rf::Wavelength(geometry.frequency_hz);
  return rf::FriisAmplitude(geometry.tx_distance_m, lambda) *
         rf::FriisAmplitude(geometry.rx_distance_m, lambda) *
         spec_.atom_reflection_amplitude;
}

Complex Metasurface::Response(const LinkGeometry& geometry,
                              double freq_offset_hz) const {
  const auto steering = SteeringVector(geometry, freq_offset_hz);
  Complex sum{0.0, 0.0};
  for (std::size_t m = 0; m < codes_.size(); ++m) {
    sum += steering[m] * PhasorForCode(codes_[m]);
  }
  return PathAmplitude(geometry) * sum;
}

Complex Metasurface::NoisyResponse(const LinkGeometry& geometry,
                                   double phase_noise_std, Rng& rng,
                                   double freq_offset_hz) const {
  const auto steering = SteeringVector(geometry, freq_offset_hz);
  Complex sum{0.0, 0.0};
  for (std::size_t m = 0; m < codes_.size(); ++m) {
    const double jitter = rng.Normal(0.0, phase_noise_std);
    const Complex noisy =
        PhasorForCode(codes_[m]) * Complex{std::cos(jitter), std::sin(jitter)};
    sum += steering[m] * noisy;
  }
  return PathAmplitude(geometry) * sum;
}

}  // namespace metaai::mts
