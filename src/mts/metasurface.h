// Programmable metasurface: a grid of 2-bit meta-atoms with a far-field
// reflection channel model following Eqns 4-6 of the paper.
//
// The channel through the metasurface path is
//   H_mts = alpha_p * sum_m e^{j phi_m^p} e^{j phi_m}
// where phi_m is the programmable phase of atom m and phi_m^p the
// propagation phase k0 (d_Tx,m + d_m,Rx). Under far-field conditions the
// per-atom path difference is linear in the atom's position projected on
// the incidence/emergence directions (Eqn 6), which is the model used here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "mts/meta_atom.h"
#include "rf/geometry.h"

namespace metaai::mts {

/// Static description of a metasurface panel.
struct MetasurfaceSpec {
  std::size_t rows = 16;
  std::size_t cols = 16;
  /// Frequency the element spacing is designed for; spacing = lambda/2.
  double design_frequency_hz = 5.25e9;
  /// Frequency bands (center Hz) the panel responds to. The prototype MTS 1
  /// is dual-band (2.4 / 5 GHz), MTS 2 single-band (3.5 GHz).
  std::vector<double> supported_bands_hz{5.25e9};
  /// Fractional bandwidth around each supported band (|f/f0 - 1| limit).
  double fractional_bandwidth = 0.12;
  /// Field of view: beyond this angle off broadside the element response
  /// rolls off sharply (Fig 25 observes the FoV edge at ~60 degrees).
  double fov_deg = 60.0;
  /// Per-atom reflection amplitude (uniform across phase states).
  double atom_reflection_amplitude = 1.0;
};

/// Specs for the two prototype panels built in the paper (§4).
MetasurfaceSpec DualBandSpec();    // MTS 1: 2.4 GHz + 5 GHz (16x16)
MetasurfaceSpec SingleBandSpec();  // MTS 2: 3.5 GHz (16x16)

/// Geometry of one Tx -> MTS -> Rx reflection link. Angles are measured
/// from the panel broadside (normal), in the azimuth plane; all endpoints
/// share the same height in the paper's setup so elevation is zero.
struct LinkGeometry {
  double tx_distance_m = 1.0;
  double tx_angle_rad = 0.0;
  double rx_distance_m = 3.0;
  double rx_angle_rad = 0.0;
  double frequency_hz = 5.25e9;
};

/// Programmable reflective metasurface.
class Metasurface {
 public:
  explicit Metasurface(MetasurfaceSpec spec);

  const MetasurfaceSpec& spec() const { return spec_; }
  std::size_t num_atoms() const { return codes_.size(); }
  double spacing_m() const { return spacing_m_; }

  PhaseCode code(std::size_t atom) const;
  void SetCode(std::size_t atom, PhaseCode code);
  void SetAllCodes(std::span<const PhaseCode> codes);
  std::span<const PhaseCode> codes() const { return codes_; }

  /// Applies the exact pi flip to every atom (multipath cancellation's
  /// second half-symbol configuration).
  void FlipAllPi();

  /// True if `frequency_hz` falls within a supported band.
  bool SupportsFrequency(double frequency_hz) const;

  /// Per-atom propagation phasor e^{j phi_m^p} for this geometry (Eqn 6),
  /// including the common k0 (d_Tx + d_Rx) phase. `freq_offset_hz` shifts
  /// the carrier (used by subcarrier parallelism).
  Complex PathPhasor(std::size_t atom, const LinkGeometry& geometry,
                     double freq_offset_hz = 0.0) const;

  /// Full steering vector: PathPhasor for every atom, scaled by the
  /// element pattern at the Tx/Rx angles. The aggregate MTS channel for a
  /// configuration Phi is then
  ///   H_mts = PathAmplitude(g) * sum_m steering[m] * e^{j phi_m}.
  std::vector<Complex> SteeringVector(const LinkGeometry& geometry,
                                      double freq_offset_hz = 0.0) const;

  /// Deterministic amplitude alpha_p of the reflected path: the product of
  /// the two Friis legs and the per-atom reflection amplitude. (Uniform
  /// across atoms under far field; a pure common scale for classification.)
  double PathAmplitude(const LinkGeometry& geometry) const;

  /// Element-pattern amplitude at an angle off broadside, with the sharp
  /// FoV rolloff beyond spec().fov_deg.
  double ElementPattern(double angle_rad) const;

  /// Channel through the MTS for the current configuration (Eqn 4).
  Complex Response(const LinkGeometry& geometry,
                   double freq_offset_hz = 0.0) const;

  /// Response if per-atom phase noise (hardware noise N_d of Eqn 13) with
  /// the given phase standard deviation (radians) is applied on top of the
  /// programmed codes.
  Complex NoisyResponse(const LinkGeometry& geometry, double phase_noise_std,
                        Rng& rng, double freq_offset_hz = 0.0) const;

 private:
  MetasurfaceSpec spec_;
  double spacing_m_;
  std::vector<PhaseCode> codes_;
};

}  // namespace metaai::mts
