// mts::ConfigCache — LRU cache of solved metasurface configurations.
//
// Solving a weight mapping is by far the most expensive step of a
// deployment (coordinate descent over every atom for every (output,
// symbol) target), yet serving workloads redeploy the *same* model onto
// the *same* band over and over: every repeat request re-derives a
// configuration that was already solved. The cache keys a solved
// schedule by the exact byte content of everything the solve depends on
// — weight matrix, per-observation steering vectors, environment/fault
// offsets and solver options — so a hit returns the previously solved
// phase codes bitwise identical to a fresh solve (the determinism test
// in tests/core/weight_mapper_test.cc pins this).
//
// Keys store the full serialized content, not just a hash: two distinct
// solves can never alias, which is what makes the bitwise-identical
// guarantee unconditional. Entries are a few hundred KB for paper-scale
// models (rounds x symbols x atoms codes), so the default capacity is
// deliberately small.
//
// Thread safety: all methods are mutex-guarded; the weight mapper's
// parallel fan-out may consult one shared cache from many workers.
// Concurrent solves of the same key coordinate through the singleflight
// pair LookupOrBegin/Publish: exactly one caller (the leader) sees the
// miss and solves; the others block until the leader publishes and then
// count as hits. That makes both the contents *and* the hit/miss split
// scheduling-independent — N threads racing one cold key always score
// 1 miss + (N-1) hits and run one solve.
//
// Incremental solving: entries may carry a feature vector (normalized
// weight components) plus a family key (everything the solve depends on
// except the weights). LookupNearest scans same-family entries for the
// one closest in RMS feature distance; the weight mapper uses it to
// warm-start coordinate descent from a similar tenant's schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <mutex>

#include "mts/meta_atom.h"

namespace metaai::mts {

/// A solved configuration schedule in metasurface terms (structurally
/// identical to core::MappedSchedules, expressed without the core/sim
/// dependency): rounds x symbols x atoms phase codes plus the mapping
/// scalars that a deployment restores on a hit.
struct CachedConfig {
  std::vector<std::vector<std::vector<PhaseCode>>> rounds;
  std::vector<std::vector<int>> outputs;
  /// Cascade (depth K > 1) mappings only: upper_rounds[r][l-1][s] is the
  /// configuration layer l holds during symbol s of round r. Empty for
  /// single-surface mappings, which keeps their entries byte-compatible
  /// with pre-cascade caches.
  std::vector<std::vector<std::vector<std::vector<PhaseCode>>>> upper_rounds;
  double scale = 0.0;
  double mean_relative_residual = 0.0;

  bool operator==(const CachedConfig&) const = default;
};

/// Builds the canonical content key for a solve: an order-sensitive byte
/// string of every input. Append calls must happen in a fixed order at
/// the call site (the weight mapper documents its field order).
class ConfigKey {
 public:
  ConfigKey& Tag(std::string_view tag);
  ConfigKey& Add(double value);
  ConfigKey& Add(std::uint64_t value);
  ConfigKey& AddBytes(const void* data, std::size_t size);

  std::string Take() && { return std::move(bytes_); }
  const std::string& str() const { return bytes_; }

 private:
  std::string bytes_;
};

class ConfigCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit ConfigCache(std::size_t capacity = kDefaultCapacity);
  ConfigCache(const ConfigCache&) = delete;
  ConfigCache& operator=(const ConfigCache&) = delete;

  /// Returns the cached configuration for `key` and moves it to the
  /// front of the LRU order; nullopt on miss. Counts cache.hits /
  /// cache.misses obs counters.
  std::optional<CachedConfig> Lookup(const std::string& key);

  /// Singleflight lookup. On a hit, identical to Lookup. On a miss with
  /// no solve of `key` underway, the caller becomes the leader: the miss
  /// is counted and nullopt returned — the caller MUST later call
  /// Publish (or Abandon on failure). On a miss while another thread is
  /// already solving `key`, blocks until that leader publishes (then a
  /// hit) or abandons (then this caller is promoted to leader and gets
  /// the nullopt/miss). Waits are counted under cache.singleflight_waits.
  std::optional<CachedConfig> LookupOrBegin(const std::string& key);

  /// Completes a LookupOrBegin-led solve: inserts the value (with
  /// optional nearest-lookup metadata) and wakes every waiter on `key`.
  void Publish(const std::string& key, CachedConfig value,
               std::string family = {}, std::vector<double> features = {});

  /// Releases leadership of `key` without inserting (the solve failed).
  /// One blocked waiter, if any, is promoted to leader.
  void Abandon(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used
  /// entry when at capacity. Counts cache.insertions / cache.evictions.
  /// `family`/`features` make the entry a LookupNearest candidate.
  void Insert(const std::string& key, CachedConfig value,
              std::string family = {}, std::vector<double> features = {});

  /// Nearest-key lookup for warm starts: among entries whose family key
  /// equals `family` and whose feature vector has `features`'s length,
  /// returns the one with the smallest RMS feature distance, provided it
  /// is <= max_distance. Ties go to the lexicographically smallest
  /// content key, so the winner is a pure function of the cache contents
  /// and warm-started solves replay identically regardless of
  /// insertion/eviction history. Does not touch LRU order or the
  /// hit/miss counters (a nearest hit is not an exact hit); counts
  /// cache.nearest_hits / cache.nearest_misses.
  std::optional<CachedConfig> LookupNearest(const std::string& family,
                                            const std::vector<double>& features,
                                            double max_distance) const;

  /// Drops every entry; statistics keep accumulating. In-flight
  /// singleflight solves are unaffected.
  void Clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// LookupOrBegin calls that blocked behind another thread's solve.
    std::uint64_t singleflight_waits = 0;
    /// LookupNearest outcomes.
    std::uint64_t nearest_hits = 0;
    std::uint64_t nearest_misses = 0;

    /// hits / (hits + misses); 0 when never queried.
    double HitRate() const;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedConfig value;
    /// Nearest-lookup metadata; empty entries never match LookupNearest.
    std::string family;
    std::vector<double> features;
  };

  void InsertLocked(const std::string& key, CachedConfig value,
                    std::string family, std::vector<double> features);

  mutable std::mutex mutex_;
  std::condition_variable inflight_cv_;
  /// Keys whose solve a LookupOrBegin leader currently owns.
  std::unordered_set<std::string> inflight_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// Mutable so const query paths (LookupNearest) can count outcomes.
  mutable Stats stats_;
};

}  // namespace metaai::mts
