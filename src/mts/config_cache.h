// mts::ConfigCache — LRU cache of solved metasurface configurations.
//
// Solving a weight mapping is by far the most expensive step of a
// deployment (coordinate descent over every atom for every (output,
// symbol) target), yet serving workloads redeploy the *same* model onto
// the *same* band over and over: every repeat request re-derives a
// configuration that was already solved. The cache keys a solved
// schedule by the exact byte content of everything the solve depends on
// — weight matrix, per-observation steering vectors, environment/fault
// offsets and solver options — so a hit returns the previously solved
// phase codes bitwise identical to a fresh solve (the determinism test
// in tests/core/weight_mapper_test.cc pins this).
//
// Keys store the full serialized content, not just a hash: two distinct
// solves can never alias, which is what makes the bitwise-identical
// guarantee unconditional. Entries are a few hundred KB for paper-scale
// models (rounds x symbols x atoms codes), so the default capacity is
// deliberately small.
//
// Thread safety: all methods are mutex-guarded; the weight mapper's
// parallel fan-out may consult one shared cache from many workers. The
// *contents* after a run are scheduling-independent (pure function of
// the key set inserted); the hit/miss split can differ when two threads
// race to solve the same key, which only costs a duplicate solve.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "mts/meta_atom.h"

namespace metaai::mts {

/// A solved configuration schedule in metasurface terms (structurally
/// identical to core::MappedSchedules, expressed without the core/sim
/// dependency): rounds x symbols x atoms phase codes plus the mapping
/// scalars that a deployment restores on a hit.
struct CachedConfig {
  std::vector<std::vector<std::vector<PhaseCode>>> rounds;
  std::vector<std::vector<int>> outputs;
  double scale = 0.0;
  double mean_relative_residual = 0.0;

  bool operator==(const CachedConfig&) const = default;
};

/// Builds the canonical content key for a solve: an order-sensitive byte
/// string of every input. Append calls must happen in a fixed order at
/// the call site (the weight mapper documents its field order).
class ConfigKey {
 public:
  ConfigKey& Tag(std::string_view tag);
  ConfigKey& Add(double value);
  ConfigKey& Add(std::uint64_t value);
  ConfigKey& AddBytes(const void* data, std::size_t size);

  std::string Take() && { return std::move(bytes_); }
  const std::string& str() const { return bytes_; }

 private:
  std::string bytes_;
};

class ConfigCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit ConfigCache(std::size_t capacity = kDefaultCapacity);
  ConfigCache(const ConfigCache&) = delete;
  ConfigCache& operator=(const ConfigCache&) = delete;

  /// Returns the cached configuration for `key` and moves it to the
  /// front of the LRU order; nullopt on miss. Counts cache.hits /
  /// cache.misses obs counters.
  std::optional<CachedConfig> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used
  /// entry when at capacity. Counts cache.insertions / cache.evictions.
  void Insert(const std::string& key, CachedConfig value);

  /// Drops every entry; statistics keep accumulating.
  void Clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    /// hits / (hits + misses); 0 when never queried.
    double HitRate() const;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedConfig value;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace metaai::mts
