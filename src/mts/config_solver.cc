#include "mts/config_solver.h"

#include <cmath>

#include "common/check.h"
#include "obs/obs.h"
#include "simd/kernels.h"

namespace metaai::mts {
namespace {

// Mean projection of a uniformly distributed phase error in
// [-pi/4, pi/4]: sin(pi/4) / (pi/4).
constexpr double kQuantizationFactor = 0.9003163161571062;

// Nearest-phase initialization for a single target: rotate each atom so
// its contribution points toward the target.
std::vector<PhaseCode> InitializeToward(std::span<const Complex> steering,
                                        Complex target) {
  const double target_phase = std::arg(target);
  std::vector<PhaseCode> codes(steering.size());
  for (std::size_t m = 0; m < steering.size(); ++m) {
    codes[m] = NearestCode(target_phase - std::arg(steering[m]));
  }
  return codes;
}

}  // namespace

Result<void> ValidateSolveOptions(const SolveOptions& options,
                                  std::size_t num_atoms) {
  if (options.max_sweeps <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "max_sweeps must be positive, got " +
                     std::to_string(options.max_sweeps)};
  }
  if (!options.atom_mask.empty()) {
    if (options.atom_mask.size() != num_atoms) {
      return Error{ErrorCode::kInvalidArgument,
                   "atom_mask size " + std::to_string(options.atom_mask.size()) +
                       " does not match the atom count " +
                       std::to_string(num_atoms)};
    }
    bool any_healthy = false;
    for (const std::uint8_t healthy : options.atom_mask) {
      if (healthy != 0) {
        any_healthy = true;
        break;
      }
    }
    if (!any_healthy) {
      return Error{ErrorCode::kInvalidArgument,
                   "atom_mask leaves no healthy atoms to solve over"};
    }
  }
  if (!options.initial_codes.empty()) {
    if (options.initial_codes.size() != num_atoms) {
      return Error{ErrorCode::kInvalidArgument,
                   "initial_codes size " +
                       std::to_string(options.initial_codes.size()) +
                       " does not match the atom count " +
                       std::to_string(num_atoms)};
    }
    for (const PhaseCode code : options.initial_codes) {
      if (code >= kNumPhaseStates) {
        return Error{ErrorCode::kInvalidArgument,
                     "initial_codes contains out-of-range code " +
                         std::to_string(static_cast<int>(code))};
      }
    }
  }
  if (!(options.min_sweep_improvement >= 0.0) ||
      options.min_sweep_improvement >= 1.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "min_sweep_improvement must lie in [0, 1), got " +
                     std::to_string(options.min_sweep_improvement)};
  }
  return Ok();
}

double ReachableMagnitude(std::size_t num_atoms) {
  return static_cast<double>(num_atoms) * kQuantizationFactor;
}

double ReachableMagnitude(std::span<const Complex> steering) {
  double sum = 0.0;
  for (const Complex& s : steering) sum += std::abs(s);
  return sum * kQuantizationFactor;
}

SolveResult SolveSingleTarget(std::span<const Complex> steering,
                              Complex target, const SolveOptions& options) {
  Check(!steering.empty(), "solver requires at least one atom");
  ComplexMatrix matrix(1, steering.size());
  for (std::size_t m = 0; m < steering.size(); ++m) matrix(0, m) = steering[m];
  const Complex targets[] = {target};
  // Pure delegation: SolveMultiTarget does its own directional
  // initialization toward the first (here: only) target before sweeping,
  // so no initial codes are passed through.
  return SolveMultiTarget(matrix, targets, options);
}

SolveResult SolveMultiTarget(const ComplexMatrix& steering,
                             std::span<const Complex> targets,
                             const SolveOptions& options) {
  const std::size_t num_targets = steering.rows();
  const std::size_t num_atoms = steering.cols();
  Check(num_targets > 0 && num_atoms > 0, "solver requires targets and atoms");
  Check(targets.size() == num_targets, "target count mismatch");
  ValidateSolveOptions(options, num_atoms).value();

  const std::vector<std::uint8_t>& mask = options.atom_mask;
  const auto masked_out = [&](std::size_t m) {
    return !mask.empty() && mask[m] == 0;
  };

  SolveResult result;
  // Initialization: warm-start codes when the caller supplies them
  // (incremental solve from a similar cached schedule), otherwise align
  // toward the first target (arbitrary but stable; for the single-target
  // case this is the classic nearest-phase beam). Masked-out (faulty)
  // atoms are pinned to code 0 and never touched either way.
  if (!options.initial_codes.empty()) {
    result.codes = options.initial_codes;
  } else {
    std::vector<Complex> first_row(num_atoms);
    for (std::size_t m = 0; m < num_atoms; ++m) first_row[m] = steering(0, m);
    result.codes = InitializeToward(first_row, targets[0]);
  }
  for (std::size_t m = 0; m < num_atoms; ++m) {
    if (masked_out(m)) result.codes[m] = 0;
  }

  // Structure-of-arrays steering planes, one K x M pair for the phased
  // sums. Masked-out atoms hold 0.0 in both planes, which contributes
  // additive identities to the running sums — bitwise equivalent to
  // skipping them, and it keeps the kernel branch-free.
  std::vector<double> steer_re(num_targets * num_atoms);
  std::vector<double> steer_im(num_targets * num_atoms);
  for (std::size_t k = 0; k < num_targets; ++k) {
    for (std::size_t m = 0; m < num_atoms; ++m) {
      if (masked_out(m)) continue;
      steer_re[k * num_atoms + m] = steering(k, m).real();
      steer_im[k * num_atoms + m] = steering(k, m).imag();
    }
  }

  // Running sums per target for the current configuration (healthy atoms
  // only; a masked atom's physical contribution is the caller's problem —
  // it either cancels under the §3.2 flip scheme or arrives as a
  // measured target offset).
  const auto recompute_sums = [&](std::vector<Complex>& sums) {
    for (std::size_t k = 0; k < num_targets; ++k) {
      sums[k] = simd::PhasedSum(steer_re.data() + k * num_atoms,
                                steer_im.data() + k * num_atoms,
                                result.codes.data(), num_atoms);
    }
  };
  std::vector<Complex> sums(num_targets);
  recompute_sums(sums);

  auto total_error = [&]() {
    double err = 0.0;
    for (std::size_t k = 0; k < num_targets; ++k) {
      err += std::norm(sums[k] - targets[k]);
    }
    return err;
  };

  static const obs::HistogramSpec kImprovementBuckets =
      obs::HistogramSpec::Linear(0.0, 1.0, 20);
  obs::Count("solver.calls");
  // Objective after each coordinate-descent sweep, for the
  // flight-recorder convergence curve.
  std::vector<double> sweep_errors;
  if (obs::ProbesEnabled()) {
    sweep_errors.reserve(static_cast<std::size_t>(options.max_sweeps));
  }
  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const double sweep_start_error = total_error();
    bool changed = false;
    for (std::size_t m = 0; m < num_atoms; ++m) {
      if (masked_out(m)) continue;
      const PhaseCode old_code = result.codes[m];
      const Complex old_phasor = PhasorForCode(old_code);
      PhaseCode best_code = old_code;
      double best_error = 0.0;
      bool first = true;
      for (PhaseCode candidate = 0; candidate < kNumPhaseStates; ++candidate) {
        const Complex delta = PhasorForCode(candidate) - old_phasor;
        double err = 0.0;
        for (std::size_t k = 0; k < num_targets; ++k) {
          err += std::norm(sums[k] + steering(k, m) * delta - targets[k]);
        }
        if (first || err < best_error) {
          first = false;
          best_error = err;
          best_code = candidate;
        }
      }
      if (best_code != old_code) {
        const Complex delta = PhasorForCode(best_code) - old_phasor;
        for (std::size_t k = 0; k < num_targets; ++k) {
          sums[k] += steering(k, m) * delta;
        }
        result.codes[m] = best_code;
        changed = true;
      }
    }
    result.sweeps_used = sweep + 1;
    const double sweep_end_error = total_error();
    if (obs::ProbesEnabled()) sweep_errors.push_back(sweep_end_error);
    // Relative objective improvement of this coordinate-descent sweep.
    const double relative_improvement =
        sweep_start_error > 0.0
            ? (sweep_start_error - sweep_end_error) / sweep_start_error
            : 0.0;
    if (sweep_start_error > 0.0) {
      obs::Observe("solver.sweep_improvement", relative_improvement,
                   kImprovementBuckets);
    }
    if (!changed) {
      converged = true;
      break;
    }
    // Residual-delta early exit: a sweep that still flipped codes but
    // barely moved the objective is polishing noise — warm starts reach
    // this state after one or two repair sweeps.
    if (options.min_sweep_improvement > 0.0 &&
        relative_improvement < options.min_sweep_improvement) {
      converged = true;
      obs::Count("solver.early_exits");
      break;
    }
  }

  static const obs::HistogramSpec kSweepBuckets =
      obs::HistogramSpec::Linear(0.0, 16.0, 16);
  obs::Count("solver.sweeps", static_cast<std::uint64_t>(result.sweeps_used));
  if (converged) obs::Count("solver.converged");
  obs::Observe("solver.sweeps_per_solve",
               static_cast<double>(result.sweeps_used), kSweepBuckets);

  // Report from sums recomputed against the final codes: the
  // incrementally updated descent sums accumulate one rounding error per
  // accepted code change and drift from the true configuration response
  // over many sweeps.
  recompute_sums(sums);
  result.achieved = sums;
  result.residual = std::sqrt(total_error());
  if (obs::ProbesEnabled()) {
    obs::Probe({.kind = obs::ProbeKind::kSolverSweep,
                .site = "solver.solve",
                .values = {{"targets", static_cast<double>(num_targets)},
                           {"atoms", static_cast<double>(num_atoms)},
                           {"sweeps", static_cast<double>(result.sweeps_used)},
                           {"converged", converged ? 1.0 : 0.0},
                           {"residual", result.residual}},
                .series = std::move(sweep_errors)});
  }
  return result;
}

Result<SolveResult> TrySolveSingleTarget(std::span<const Complex> steering,
                                         Complex target,
                                         const SolveOptions& options) {
  if (steering.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "solver requires at least one atom"};
  }
  if (Result<void> valid = ValidateSolveOptions(options, steering.size());
      !valid.ok()) {
    return valid.error();
  }
  return SolveSingleTarget(steering, target, options);
}

Result<SolveResult> TrySolveMultiTarget(const ComplexMatrix& steering,
                                        std::span<const Complex> targets,
                                        const SolveOptions& options) {
  if (steering.rows() == 0 || steering.cols() == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "solver requires targets and atoms"};
  }
  if (targets.size() != steering.rows()) {
    return Error{ErrorCode::kInvalidArgument,
                 "target count " + std::to_string(targets.size()) +
                     " does not match steering rows " +
                     std::to_string(steering.rows())};
  }
  if (Result<void> valid = ValidateSolveOptions(options, steering.cols());
      !valid.ok()) {
    return valid.error();
  }
  return SolveMultiTarget(steering, targets, options);
}

namespace {

// Phased sums of a layer's own (unscaled) steering rows under `codes`,
// through the same SoA kernel the inner solver uses. Masked-out atoms
// contribute nothing, matching the inner solver's zeroed planes.
std::vector<Complex> LayerSums(const ComplexMatrix& steering,
                               std::span<const PhaseCode> codes,
                               std::span<const std::uint8_t> mask) {
  const std::size_t num_targets = steering.rows();
  const std::size_t num_atoms = steering.cols();
  std::vector<double> re(num_atoms);
  std::vector<double> im(num_atoms);
  std::vector<Complex> sums(num_targets);
  for (std::size_t k = 0; k < num_targets; ++k) {
    for (std::size_t m = 0; m < num_atoms; ++m) {
      const bool masked = !mask.empty() && mask[m] == 0;
      re[m] = masked ? 0.0 : steering(k, m).real();
      im[m] = masked ? 0.0 : steering(k, m).imag();
    }
    sums[k] = simd::PhasedSum(re.data(), im.data(), codes.data(), num_atoms);
  }
  return sums;
}

ComplexMatrix ScaleRows(const ComplexMatrix& steering,
                        const std::vector<Complex>& factors) {
  ComplexMatrix scaled(steering.rows(), steering.cols());
  for (std::size_t k = 0; k < steering.rows(); ++k) {
    for (std::size_t m = 0; m < steering.cols(); ++m) {
      scaled(k, m) = steering(k, m) * factors[k];
    }
  }
  return scaled;
}

}  // namespace

CascadeResult SolveCascadeMultiTarget(std::span<const CascadeLayerInput> layers,
                                      std::span<const Complex> targets,
                                      const CascadeOptions& cascade) {
  Check(!layers.empty(), "cascade solve requires at least one layer");
  Check(cascade.outer_sweeps > 0, "cascade outer_sweeps must be positive");
  const std::size_t num_targets = layers.front().steering.rows();
  Check(targets.size() == num_targets, "target count mismatch");
  for (const CascadeLayerInput& layer : layers) {
    Check(layer.steering.rows() == num_targets,
          "cascade layers must share one target set");
  }

  CascadeResult result;
  // Depth 1 is the legacy single-surface solve, bit for bit: same inner
  // call, same counters, no cascade bookkeeping.
  if (layers.size() == 1) {
    SolveResult inner =
        SolveMultiTarget(layers[0].steering, targets, layers[0].options);
    result.codes.push_back(std::move(inner.codes));
    result.achieved = std::move(inner.achieved);
    result.residual = inner.residual;
    result.total_sweeps = inner.sweeps_used;
    return result;
  }

  obs::Count("solver.cascade_solves");
  const std::size_t depth = layers.size();
  result.codes.resize(depth);
  // sums[l][k]: layer l's own phased sum toward target k under its
  // current codes; the composed response is the per-target product.
  std::vector<std::vector<Complex>> sums(depth);

  // Focus initialization for the upper layers: each solves toward its
  // per-row reachable magnitude at zero phase — the configuration a
  // transparent repeater would hold. Caller-supplied initial_codes (cache
  // warm starts) seed this solve through the layer's own options.
  for (std::size_t l = 1; l < depth; ++l) {
    const ComplexMatrix& steering = layers[l].steering;
    std::vector<Complex> row(steering.cols());
    std::vector<Complex> focus(num_targets);
    for (std::size_t k = 0; k < num_targets; ++k) {
      for (std::size_t m = 0; m < steering.cols(); ++m) row[m] = steering(k, m);
      focus[k] = Complex(ReachableMagnitude(std::span<const Complex>(row)), 0.0);
    }
    SolveResult inner = SolveMultiTarget(steering, focus, layers[l].options);
    result.total_sweeps += inner.sweeps_used;
    result.codes[l] = std::move(inner.codes);
    sums[l] = std::move(inner.achieved);
  }

  // Product of every other layer's current sums, per target. Layers not
  // yet solved (empty sums) contribute unity.
  const auto other_factors = [&](std::size_t skip) {
    std::vector<Complex> factors(num_targets, Complex(1.0, 0.0));
    for (std::size_t l = 0; l < depth; ++l) {
      if (l == skip || sums[l].empty()) continue;
      for (std::size_t k = 0; k < num_targets; ++k) factors[k] *= sums[l][k];
    }
    return factors;
  };

  // One block re-solve: the layer sees its rows scaled by the composed
  // factor of every other layer, so the inner solver's achieved values
  // ARE the full cascade response and the true targets apply unchanged.
  const auto solve_block = [&](std::size_t l) {
    SolveOptions options = layers[l].options;
    if (!result.codes[l].empty()) options.initial_codes = result.codes[l];
    SolveResult inner = SolveMultiTarget(
        ScaleRows(layers[l].steering, other_factors(l)), targets, options);
    result.total_sweeps += inner.sweeps_used;
    result.codes[l] = std::move(inner.codes);
    sums[l] = LayerSums(layers[l].steering, result.codes[l],
                        layers[l].options.atom_mask);
  };

  for (int sweep = 0; sweep < cascade.outer_sweeps; ++sweep) {
    obs::Count("solver.cascade_outer_sweeps");
    // The front layer solves last in every outer sweep so it absorbs the
    // freshest upper-layer factor; upper layers only re-solve from sweep
    // two on (sweep one runs against their focus initialization).
    if (sweep > 0) {
      for (std::size_t l = 1; l < depth; ++l) solve_block(l);
    }
    solve_block(0);
  }

  result.achieved.assign(num_targets, Complex(1.0, 0.0));
  for (std::size_t l = 0; l < depth; ++l) {
    for (std::size_t k = 0; k < num_targets; ++k) {
      result.achieved[k] *= sums[l][k];
    }
  }
  double err = 0.0;
  for (std::size_t k = 0; k < num_targets; ++k) {
    err += std::norm(result.achieved[k] - targets[k]);
  }
  result.residual = std::sqrt(err);
  return result;
}

Result<CascadeResult> TrySolveCascadeMultiTarget(
    std::span<const CascadeLayerInput> layers, std::span<const Complex> targets,
    const CascadeOptions& cascade) {
  if (layers.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "cascade solve requires at least one layer"};
  }
  if (cascade.outer_sweeps <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "cascade outer_sweeps must be positive, got " +
                     std::to_string(cascade.outer_sweeps)};
  }
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const CascadeLayerInput& layer = layers[l];
    if (layer.steering.rows() == 0 || layer.steering.cols() == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "cascade layer " + std::to_string(l) +
                       " requires targets and atoms"};
    }
    if (layer.steering.rows() != targets.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "cascade layer " + std::to_string(l) + " has " +
                       std::to_string(layer.steering.rows()) +
                       " rows for " + std::to_string(targets.size()) +
                       " targets"};
    }
    if (Result<void> valid =
            ValidateSolveOptions(layer.options, layer.steering.cols());
        !valid.ok()) {
      return valid.error();
    }
  }
  return SolveCascadeMultiTarget(layers, targets, cascade);
}

}  // namespace metaai::mts
