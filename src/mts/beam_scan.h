// Beam scanning for receiver-direction estimation (§3.2).
//
// The weight-implementation step needs the emergence angle theta toward the
// receiver. The paper estimates it with standard beam scanning: sweep focus
// configurations over candidate angles and pick the one maximizing received
// power. The scan consumes a power-measurement callback so it works against
// both the simulator and (hypothetically) real hardware.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "mts/metasurface.h"

namespace metaai::mts {

/// Phase codes that focus the reflection of a transmitter at
/// `geometry.tx_*` toward the emergence angle `geometry.rx_angle_rad`:
/// each atom's code cancels its propagation phase.
std::vector<PhaseCode> FocusCodes(const Metasurface& surface,
                                  const LinkGeometry& geometry);

struct BeamScanResult {
  double angle_rad = 0.0;
  double peak_power = 0.0;
  std::vector<double> scanned_powers;  // one per candidate angle
};

/// Sweeps candidate emergence angles in [min_angle, max_angle] with
/// `steps` points. For each candidate it builds FocusCodes and calls
/// `measure_power(codes)`; returns the angle with maximum power.
BeamScanResult ScanForReceiver(
    const Metasurface& surface, const LinkGeometry& geometry,
    double min_angle_rad, double max_angle_rad, int steps,
    const std::function<double(std::span<const PhaseCode>)>& measure_power);

}  // namespace metaai::mts
