#include "mts/meta_atom.h"

#include <cmath>

#include "common/check.h"

namespace metaai::mts {

double PhaseForCode(PhaseCode code) {
  Check(code < kNumPhaseStates, "phase code out of range");
  return static_cast<double>(code) * M_PI / 2.0;
}

Complex PhasorForCode(PhaseCode code) {
  // Exact values avoid accumulating trig error over 256-atom sums.
  switch (code) {
    case 0:
      return {1.0, 0.0};
    case 1:
      return {0.0, 1.0};
    case 2:
      return {-1.0, 0.0};
    case 3:
      return {0.0, -1.0};
    default:
      throw CheckError("phase code out of range");
  }
}

PhaseCode OppositeCode(PhaseCode code) {
  Check(code < kNumPhaseStates, "phase code out of range");
  return static_cast<PhaseCode>((code + 2) % kNumPhaseStates);
}

PhaseCode NearestCode(double phase_rad) {
  const double two_pi = 2.0 * M_PI;
  double wrapped = std::fmod(phase_rad, two_pi);
  if (wrapped < 0.0) wrapped += two_pi;
  const int code = static_cast<int>(std::lround(wrapped / (M_PI / 2.0))) %
                   kNumPhaseStates;
  return static_cast<PhaseCode>(code);
}

}  // namespace metaai::mts
