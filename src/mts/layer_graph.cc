#include "mts/layer_graph.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"

namespace metaai::mts {
namespace {

Result<void> ValidateSpecs(const std::vector<PhysicalLayerSpec>& specs) {
  if (specs.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "layer graph needs at least one layer"};
  }
  for (std::size_t l = 0; l < specs.size(); ++l) {
    const PhysicalLayerSpec& spec = specs[l];
    if (spec.surface.rows == 0 || spec.surface.cols == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "layer " + std::to_string(l) +
                       ": surface needs at least one row and one column"};
    }
    if (!std::isfinite(spec.coupling_gain) || spec.coupling_gain <= 0.0) {
      return Error{ErrorCode::kInvalidArgument,
                   "layer " + std::to_string(l) +
                       ": coupling gain must be positive and finite"};
    }
  }
  return Ok();
}

}  // namespace

LayerGraph::LayerGraph(const Metasurface& front) {
  specs_.push_back(PhysicalLayerSpec{front.spec(), 1.0});
  layers_.push_back(front);
}

LayerGraph::LayerGraph(std::vector<PhysicalLayerSpec> specs)
    : specs_(std::move(specs)) {
  ValidateSpecs(specs_).value();  // Check-abort on invalid specs
  layers_.reserve(specs_.size());
  for (const PhysicalLayerSpec& spec : specs_) {
    layers_.emplace_back(spec.surface);
  }
}

Result<LayerGraph> LayerGraph::TryFromSpecs(
    std::vector<PhysicalLayerSpec> specs) {
  if (Result<void> valid = ValidateSpecs(specs); !valid.ok()) {
    return valid.error();
  }
  return LayerGraph(std::move(specs));
}

const Metasurface& LayerGraph::layer(std::size_t index) const {
  Check(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

double LayerGraph::coupling_gain(std::size_t index) const {
  Check(index < specs_.size(), "layer index out of range");
  return specs_[index].coupling_gain;
}

}  // namespace metaai::mts
