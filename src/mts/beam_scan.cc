#include "mts/beam_scan.h"

#include <cmath>

#include "common/check.h"

namespace metaai::mts {

std::vector<PhaseCode> FocusCodes(const Metasurface& surface,
                                  const LinkGeometry& geometry) {
  std::vector<PhaseCode> codes(surface.num_atoms());
  for (std::size_t m = 0; m < codes.size(); ++m) {
    // Cancel the propagation phase so all atoms add coherently at the
    // receiver direction.
    codes[m] = NearestCode(-std::arg(surface.PathPhasor(m, geometry)));
  }
  return codes;
}

BeamScanResult ScanForReceiver(
    const Metasurface& surface, const LinkGeometry& geometry,
    double min_angle_rad, double max_angle_rad, int steps,
    const std::function<double(std::span<const PhaseCode>)>& measure_power) {
  Check(steps >= 2, "beam scan needs at least two steps");
  Check(max_angle_rad > min_angle_rad, "beam scan needs a non-empty range");
  Check(static_cast<bool>(measure_power), "beam scan needs a measurement");

  BeamScanResult result;
  result.scanned_powers.reserve(static_cast<std::size_t>(steps));
  bool first = true;
  for (int i = 0; i < steps; ++i) {
    const double angle = min_angle_rad + (max_angle_rad - min_angle_rad) *
                                             static_cast<double>(i) /
                                             static_cast<double>(steps - 1);
    LinkGeometry candidate = geometry;
    candidate.rx_angle_rad = angle;
    const auto codes = FocusCodes(surface, candidate);
    const double power = measure_power(codes);
    result.scanned_powers.push_back(power);
    if (first || power > result.peak_power) {
      first = false;
      result.peak_power = power;
      result.angle_rad = angle;
    }
  }
  return result;
}

}  // namespace metaai::mts
