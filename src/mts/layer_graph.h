// Composable stack of programmable surfaces (SIM cascade).
//
// The paper's prototype drives one 16x16 panel — a single physical FC
// layer — which caps the achievable accuracy. Stacked-intelligent-
// metasurface work (An et al.'s SIM survey, Stylianopoulos et al.'s MINN)
// chains K surfaces in the propagation path so their responses compose
// multiplicatively in the wave domain. LayerGraph is the value type for
// that chain: layer 0 is the schedule-driven front panel (the surface the
// weight mapper encodes per-symbol patterns onto, and the only one faults
// and the mid-symbol pi flip act on) and layers 1..K-1 are upstream
// surfaces whose composed factor
//
//   U(o) = prod_{l>=1} c_l(o) * sum_m s_l(o, m) e^{j phi_l[m]}
//
// multiplies the front layer's response at observation o. The coupling
// c_l(o) = coupling_gain_l / (0.9 * sum_m |s_l(o, m)|) normalizes by the
// layer's reachable focus magnitude, so a focused layer at coupling_gain
// 1.0 contributes ~unity and gains above 1 model the aperture/focusing
// gain an extra surface adds to the path budget.
//
// A depth() == 1 graph is the legacy single-surface pipeline, bit for bit:
// no upper factor is ever computed, so every downstream consumer
// (OtaLink, MapWeights, Deployment, serve::Runtime) reproduces the
// single-panel numbers exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "mts/metasurface.h"

namespace metaai::mts {

/// One layer of a cascade: the panel plus its inter-layer coupling gain.
struct PhysicalLayerSpec {
  MetasurfaceSpec surface;
  /// Magnitude the layer contributes at full focus (see file comment).
  /// 1.0 is a transparent repeater; > 1 models aperture/focus gain.
  double coupling_gain = 1.0;
};

/// An ordered chain of K >= 1 programmable surfaces. Layer 0 is the
/// front (schedule-driven) panel; higher indices sit further upstream.
class LayerGraph {
 public:
  /// Wraps a single surface as a depth-1 graph (the legacy pipeline).
  explicit LayerGraph(const Metasurface& front);

  /// Named adapter for the same wrap: the canonical way to hand a bare
  /// panel to graph-first APIs (serve::Runtime, fleet::Fleet). A
  /// FromSurface graph serves bit-for-bit like the panel it wraps.
  static LayerGraph FromSurface(const Metasurface& front) {
    return LayerGraph(front);
  }

  /// Builds a K-layer graph; Check-aborts on invalid specs (see
  /// TryFromSpecs for the typed-error form).
  explicit LayerGraph(std::vector<PhysicalLayerSpec> specs);

  /// Typed-error construction: rejects empty graphs, zero-sized panels
  /// and non-positive/non-finite coupling gains with kInvalidArgument.
  static Result<LayerGraph> TryFromSpecs(std::vector<PhysicalLayerSpec> specs);

  std::size_t depth() const { return layers_.size(); }
  const Metasurface& front() const { return layers_.front(); }
  const Metasurface& layer(std::size_t index) const;
  double coupling_gain(std::size_t index) const;
  const std::vector<PhysicalLayerSpec>& specs() const { return specs_; }

 private:
  std::vector<PhysicalLayerSpec> specs_;
  std::vector<Metasurface> layers_;
};

}  // namespace metaai::mts
