// Discrete phase-configuration solver (Eqns 7-10).
//
// Given the per-atom steering phasors of a link and a desired complex
// weight H_des, the solver picks one of four phase states per atom to
// minimize |H_mts(Phi) - H_des| (Eqn 7). Variants:
//  * environment-aware: target (H_des - H_e) so the environmental channel
//    is absorbed into the optimization (Eqn 8);
//  * multi-target: one shared Phi must realize a different weight on each
//    subcarrier (Eqn 9) or at each receive antenna (Eqn 10); the solver
//    minimizes the summed squared error across targets.
//
// The optimizer is incremental coordinate descent: per sweep each atom
// tries its four states against the running sums, which makes a sweep
// O(M * states * targets). A nearest-phase initialization gives it a good
// starting point; a handful of sweeps converge in practice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "mts/meta_atom.h"

namespace metaai::mts {

struct SolveOptions {
  int max_sweeps = 8;
  /// Fault-aware solving: when non-empty (size must equal the atom
  /// count), atoms with atom_mask[m] == 0 are frozen out of coordinate
  /// descent — they keep code 0, contribute nothing to the optimized
  /// sums, and the solve runs over the healthy atoms only. Used by the
  /// graceful-degradation re-solve after stuck atoms are diagnosed (the
  /// physical contribution of a stuck atom either cancels under the
  /// §3.2 flip scheme or is folded into the target as a measured
  /// offset by the weight mapper).
  std::vector<std::uint8_t> atom_mask;
  /// Warm start: when non-empty (size must equal the atom count), the
  /// sweep loop starts from these codes instead of the nearest-phase
  /// initialization. Masked-out atoms are still pinned to code 0. Used
  /// by the incremental solver to seed from the nearest cached schedule
  /// of a similar weight matrix; coordinate descent then only has to
  /// repair the differences.
  std::vector<PhaseCode> initial_codes;
  /// Early exit: when positive, a sweep whose relative objective
  /// improvement (start - end) / start falls below this threshold ends
  /// the solve (counted under solver.early_exits and reported as
  /// converged). 0 keeps the exact legacy behaviour of sweeping until
  /// no code changes or max_sweeps.
  double min_sweep_improvement = 0.0;
};

struct SolveResult {
  std::vector<PhaseCode> codes;
  /// Achieved sum_m steering[m] e^{j phi_m} per target (masked atoms
  /// excluded), recomputed from the final codes — not the incrementally
  /// updated descent sums, which drift from the true values over many
  /// sweeps.
  std::vector<Complex> achieved;
  /// Root of the summed squared error across targets, evaluated from the
  /// recomputed sums.
  double residual = 0.0;
  int sweeps_used = 0;
};

/// Validates caller-supplied solver options against the aperture they
/// will solve over: max_sweeps must be positive and a non-empty
/// atom_mask must match `num_atoms` and keep at least one atom healthy.
/// Typed errors (ErrorCode::kInvalidArgument) instead of Check aborts,
/// so request paths can reject bad options gracefully.
Result<void> ValidateSolveOptions(const SolveOptions& options,
                                  std::size_t num_atoms);

/// Single-target solve: min over codes of |sum_m steering[m] e^{j phi_m}
/// - target|. `steering` has one phasor per atom. Throws CheckError on
/// invalid options (see TrySolveSingleTarget for the typed-error form).
SolveResult SolveSingleTarget(std::span<const Complex> steering,
                              Complex target, const SolveOptions& options = {});

/// Multi-target solve with shared codes: `steering(k, m)` is the phasor of
/// atom m toward target k; minimizes sum_k |sum_m steering(k,m) e^{j phi_m}
/// - targets[k]|^2. Throws CheckError on invalid options.
SolveResult SolveMultiTarget(const ComplexMatrix& steering,
                             std::span<const Complex> targets,
                             const SolveOptions& options = {});

/// Result-returning forms: user-supplied options/shapes come back as
/// typed errors instead of exceptions.
Result<SolveResult> TrySolveSingleTarget(std::span<const Complex> steering,
                                         Complex target,
                                         const SolveOptions& options = {});
Result<SolveResult> TrySolveMultiTarget(const ComplexMatrix& steering,
                                        std::span<const Complex> targets,
                                        const SolveOptions& options = {});

/// Largest |target| magnitude reliably reachable with M atoms of 2-bit
/// phase: aligning every atom to the nearest of 4 states loses the
/// sinc-like quantization factor sin(pi/4)/(pi/4) ~= 0.9.
double ReachableMagnitude(std::size_t num_atoms);

/// Reachable magnitude for a concrete steering row: the quantization
/// factor times the sum of per-atom magnitudes (the unit-phasor formula
/// above is the special case |steering[m]| == 1 for all m).
double ReachableMagnitude(std::span<const Complex> steering);

/// One layer of a cascade solve: the steering matrix of that surface
/// toward the shared target set (row k = target k, any coupling factors
/// already folded in by the caller) plus that layer's inner-solver
/// options. Layer 0 is the front panel.
struct CascadeLayerInput {
  ComplexMatrix steering;
  SolveOptions options;
};

struct CascadeOptions {
  /// Alternating block-coordinate sweeps over the layer blocks. Sweep 1
  /// solves the front layer against the focus-initialized upper layers;
  /// each further sweep re-solves every upper layer (warm-started from
  /// its current codes) and then the front layer again.
  int outer_sweeps = 2;
};

struct CascadeResult {
  /// codes[l] is layer l's configuration (l = 0 is the front panel).
  std::vector<std::vector<PhaseCode>> codes;
  /// Composed response per target: prod_l sum_m steering_l(k, m) e^{j phi}.
  std::vector<Complex> achieved;
  /// Root summed squared error of `achieved` against the targets.
  double residual = 0.0;
  /// Inner coordinate-descent sweeps summed across all block solves.
  long total_sweeps = 0;
};

/// Multi-layer (SIM cascade) solve: pick a configuration per layer so the
/// product of the per-layer phased sums matches the targets. Upper layers
/// (l >= 1) are initialized by focusing toward their per-row reachable
/// magnitude, then the blocks are alternated: each block re-solve runs
/// the standard coordinate-descent inner loop on rows scaled by the other
/// layers' current sums, warm-started from that layer's current codes.
/// A single-layer input delegates to SolveMultiTarget unchanged (same
/// codes, sums and counters, bit for bit). Throws CheckError on invalid
/// shapes/options; see TrySolveCascadeMultiTarget for typed errors.
CascadeResult SolveCascadeMultiTarget(std::span<const CascadeLayerInput> layers,
                                      std::span<const Complex> targets,
                                      const CascadeOptions& cascade = {});

Result<CascadeResult> TrySolveCascadeMultiTarget(
    std::span<const CascadeLayerInput> layers, std::span<const Complex> targets,
    const CascadeOptions& cascade = {});

}  // namespace metaai::mts
