#include "mts/controller.h"

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::mts {

Controller::Controller(ControllerConfig config) : config_(config) {
  Check(config_.num_atoms > 0, "controller needs atoms");
  Check(config_.num_groups > 0, "controller needs groups");
  Check(config_.num_atoms % config_.num_groups == 0,
        "atoms must divide evenly into groups");
  Check(config_.shift_clock_hz > 0.0, "shift clock must be positive");
}

std::size_t Controller::BitsPerGroup() const {
  return (config_.num_atoms / config_.num_groups) *
         static_cast<std::size_t>(kPhaseBits);
}

double Controller::PatternLoadTime() const {
  return static_cast<double>(BitsPerGroup()) / config_.shift_clock_hz +
         config_.latch_overhead_s;
}

double Controller::MaxSwitchRate() const { return 1.0 / PatternLoadTime(); }

bool Controller::CanSustain(double symbol_rate_hz,
                            int patterns_per_symbol) const {
  Check(symbol_rate_hz > 0.0, "symbol rate must be positive");
  Check(patterns_per_symbol > 0, "patterns per symbol must be positive");
  const bool ok = symbol_rate_hz * patterns_per_symbol <= MaxSwitchRate();
  obs::Count("controller.budget_checks");
  if (!ok) obs::Count("controller.budget_violations");
  obs::SetGauge("controller.max_switch_rate_hz", MaxSwitchRate());
  return ok;
}

double Controller::ScheduleEnergy(std::size_t num_patterns,
                                  double duration_s) const {
  Check(duration_s >= 0.0, "duration must be non-negative");
  // Each full pattern clocks BitsPerGroup() cycles into every parallel
  // shift-register chain before the latch.
  obs::Count("controller.patterns", num_patterns);
  obs::Count("controller.shift_cycles", num_patterns * BitsPerGroup());
  return static_cast<double>(num_patterns) * config_.energy_per_pattern_j +
         config_.static_power_w * duration_s;
}

}  // namespace metaai::mts
