// Weight Distribution Density (Appendix A.2, Eqn 19).
//
// WDD quantifies how densely the discrete weights reachable by an M-atom
// 2-bit metasurface cover the normalized complex weight disk of radius
// sqrt(2)/2. A configuration Phi reaches sum_m e^{j phi_m}; with phases in
// {0, pi/2, pi, 3pi/2} the normalized reachable set is the integer lattice
// {(p + j q)/M : |p| + |q| <= M, p + q == M (mod 2)} — a checkerboard
// lattice inside the unit diamond whose inscribed circle has radius
// sqrt(2)/2 (which is exactly the paper's disk). WDD is the fraction of
// that disk covered within a mapping tolerance epsilon; it saturates once
// the lattice pitch drops below the tolerance, reproducing Fig 30's
// saturation at M = 256.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace metaai::mts {

struct WddOptions {
  /// Mapping tolerance epsilon of Eqn 19 (disk-normalized units). The
  /// paper counts reachable weights times a pi*eps^2 footprint; we use the
  /// non-double-counting coverage-cell formulation and pick eps = 2/256 so
  /// full coverage — the saturation knee of Fig 30 — lands at M = 256,
  /// where the lattice row pitch 2/M first drops to the cell size.
  double epsilon = 2.0 / 256.0;
};

/// Computes the WDD for an M-atom 2-bit surface by exact lattice
/// enumeration (no Monte Carlo).
double WeightDistributionDensity(std::size_t num_atoms,
                                 const WddOptions& options = {});

/// All reachable normalized weights for small M (used by the Fig 6
/// distribution bench; count grows ~ M^2 so keep M <= ~2048).
std::vector<std::complex<double>> ReachableNormalizedWeights(
    std::size_t num_atoms);

/// Distance from `target` (inside the radius sqrt(2)/2 disk) to the
/// nearest reachable normalized weight.
double NearestWeightDistance(std::complex<double> target,
                             std::size_t num_atoms);

}  // namespace metaai::mts
