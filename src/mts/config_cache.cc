#include "mts/config_cache.h"

#include <cstring>

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::mts {

ConfigKey& ConfigKey::Tag(std::string_view tag) {
  return AddBytes(tag.data(), tag.size());
}

ConfigKey& ConfigKey::Add(double value) {
  // Bit pattern, not text: the key must distinguish -0.0/0.0 and every
  // last ulp, exactly like the solve it stands for.
  return AddBytes(&value, sizeof(value));
}

ConfigKey& ConfigKey::Add(std::uint64_t value) {
  return AddBytes(&value, sizeof(value));
}

ConfigKey& ConfigKey::AddBytes(const void* data, std::size_t size) {
  // Length-prefixed so "ab"+"c" never collides with "a"+"bc".
  const std::uint64_t prefix = size;
  bytes_.append(reinterpret_cast<const char*>(&prefix), sizeof(prefix));
  bytes_.append(static_cast<const char*>(data), size);
  return *this;
}

double ConfigCache::Stats::HitRate() const {
  const std::uint64_t queries = hits + misses;
  return queries > 0 ? static_cast<double>(hits) / static_cast<double>(queries)
                     : 0.0;
}

ConfigCache::ConfigCache(std::size_t capacity) : capacity_(capacity) {
  Check(capacity > 0, "config cache capacity must be positive");
}

std::optional<CachedConfig> ConfigCache::Lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::Count("cache.misses");
    obs::SetGauge("cache.hit_rate", stats_.HitRate());
    return std::nullopt;
  }
  ++stats_.hits;
  obs::Count("cache.hits");
  obs::SetGauge("cache.hit_rate", stats_.HitRate());
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ConfigCache::Insert(const std::string& key, CachedConfig value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (two workers raced on the same miss): keep the newer
    // value — both are bitwise identical by construction.
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Count("cache.evictions");
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(lru_.front().key, lru_.begin());
  ++stats_.insertions;
  obs::Count("cache.insertions");
}

void ConfigCache::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t ConfigCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ConfigCache::Stats ConfigCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace metaai::mts
