#include "mts/config_cache.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::mts {

ConfigKey& ConfigKey::Tag(std::string_view tag) {
  return AddBytes(tag.data(), tag.size());
}

ConfigKey& ConfigKey::Add(double value) {
  // Bit pattern, not text: the key must distinguish -0.0/0.0 and every
  // last ulp, exactly like the solve it stands for.
  return AddBytes(&value, sizeof(value));
}

ConfigKey& ConfigKey::Add(std::uint64_t value) {
  return AddBytes(&value, sizeof(value));
}

ConfigKey& ConfigKey::AddBytes(const void* data, std::size_t size) {
  // Length-prefixed so "ab"+"c" never collides with "a"+"bc".
  const std::uint64_t prefix = size;
  bytes_.append(reinterpret_cast<const char*>(&prefix), sizeof(prefix));
  bytes_.append(static_cast<const char*>(data), size);
  return *this;
}

double ConfigCache::Stats::HitRate() const {
  const std::uint64_t queries = hits + misses;
  return queries > 0 ? static_cast<double>(hits) / static_cast<double>(queries)
                     : 0.0;
}

ConfigCache::ConfigCache(std::size_t capacity) : capacity_(capacity) {
  Check(capacity > 0, "config cache capacity must be positive");
}

std::optional<CachedConfig> ConfigCache::Lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::Count("cache.misses");
    obs::SetGauge("cache.hit_rate", stats_.HitRate());
    return std::nullopt;
  }
  ++stats_.hits;
  obs::Count("cache.hits");
  obs::SetGauge("cache.hit_rate", stats_.HitRate());
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

std::optional<CachedConfig> ConfigCache::LookupOrBegin(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      obs::Count("cache.hits");
      obs::SetGauge("cache.hit_rate", stats_.HitRate());
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    if (inflight_.insert(key).second) {
      // Leadership claimed: this caller runs the (single) solve. The
      // miss is counted here so N threads racing one cold key always
      // score exactly 1 miss regardless of scheduling.
      ++stats_.misses;
      obs::Count("cache.misses");
      obs::SetGauge("cache.hit_rate", stats_.HitRate());
      return std::nullopt;
    }
    // Another thread owns the solve: block until it publishes (next
    // iteration hits) or abandons (this thread may claim leadership).
    ++stats_.singleflight_waits;
    obs::Count("cache.singleflight_waits");
    inflight_cv_.wait(lock, [&] { return inflight_.count(key) == 0; });
  }
}

void ConfigCache::Publish(const std::string& key, CachedConfig value,
                          std::string family, std::vector<double> features) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Check(inflight_.erase(key) == 1,
          "Publish without a matching LookupOrBegin leadership");
    InsertLocked(key, std::move(value), std::move(family),
                 std::move(features));
  }
  inflight_cv_.notify_all();
}

void ConfigCache::Abandon(const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Check(inflight_.erase(key) == 1,
          "Abandon without a matching LookupOrBegin leadership");
  }
  inflight_cv_.notify_all();
}

void ConfigCache::Insert(const std::string& key, CachedConfig value,
                         std::string family, std::vector<double> features) {
  const std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(key, std::move(value), std::move(family), std::move(features));
}

void ConfigCache::InsertLocked(const std::string& key, CachedConfig value,
                               std::string family,
                               std::vector<double> features) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (two workers raced on the same miss): keep the newer
    // value — both are bitwise identical by construction.
    it->second->value = std::move(value);
    it->second->family = std::move(family);
    it->second->features = std::move(features);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Count("cache.evictions");
  }
  lru_.push_front(
      Entry{key, std::move(value), std::move(family), std::move(features)});
  index_.emplace(lru_.front().key, lru_.begin());
  ++stats_.insertions;
  obs::Count("cache.insertions");
}

std::optional<CachedConfig> ConfigCache::LookupNearest(
    const std::string& family, const std::vector<double>& features,
    double max_distance) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Entry* best = nullptr;
  double best_distance = 0.0;
  if (!family.empty() && !features.empty()) {
    // Distance ties break on the lexicographically smallest content key.
    // The LRU walk order depends on the whole insertion/eviction/lookup
    // history, so "first seen wins" would make the warm-start seed — and
    // therefore the solved codes — depend on scheduling; keying the tie
    // on entry content keeps replays bitwise identical.
    for (const Entry& entry : lru_) {
      if (entry.family != family ||
          entry.features.size() != features.size()) {
        continue;
      }
      double sum = 0.0;
      for (std::size_t i = 0; i < features.size(); ++i) {
        const double d = entry.features[i] - features[i];
        sum += d * d;
      }
      const double distance =
          std::sqrt(sum / static_cast<double>(features.size()));
      if (distance > max_distance) continue;
      if (best == nullptr || distance < best_distance ||
          (distance == best_distance && entry.key < best->key)) {
        best = &entry;
        best_distance = distance;
      }
    }
  }
  if (best == nullptr) {
    ++stats_.nearest_misses;
    obs::Count("cache.nearest_misses");
    return std::nullopt;
  }
  ++stats_.nearest_hits;
  obs::Count("cache.nearest_hits");
  return best->value;
}

void ConfigCache::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t ConfigCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ConfigCache::Stats ConfigCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace metaai::mts
