#include "mts/wdd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::mts {
namespace {

constexpr double kDiskRadius = 0.7071067811865476;  // sqrt(2)/2

bool HasValidParity(long p, long q, long m) { return ((p + q) - m) % 2 == 0; }

}  // namespace

std::vector<std::complex<double>> ReachableNormalizedWeights(
    std::size_t num_atoms) {
  Check(num_atoms > 0, "need at least one atom");
  const auto m = static_cast<long>(num_atoms);
  std::vector<std::complex<double>> weights;
  for (long p = -m; p <= m; ++p) {
    const long q_span = m - std::labs(p);
    for (long q = -q_span; q <= q_span; ++q) {
      if (!HasValidParity(p, q, m)) continue;
      weights.emplace_back(static_cast<double>(p) / static_cast<double>(m),
                           static_cast<double>(q) / static_cast<double>(m));
    }
  }
  return weights;
}

double WeightDistributionDensity(std::size_t num_atoms,
                                 const WddOptions& options) {
  Check(num_atoms > 0, "need at least one atom");
  Check(options.epsilon > 0.0, "epsilon must be positive");
  const double eps = options.epsilon;
  const auto m = static_cast<long>(num_atoms);
  const double md = static_cast<double>(m);

  // Cell grid over the bounding square of the disk.
  const auto cells_per_axis =
      static_cast<std::size_t>(std::ceil(2.0 * kDiskRadius / eps));
  std::vector<char> covered(cells_per_axis * cells_per_axis, 0);

  auto cell_of = [&](double coord) {
    const double offset = (coord + kDiskRadius) / eps;
    const auto idx = static_cast<long>(std::floor(offset));
    return std::clamp(idx, 0L, static_cast<long>(cells_per_axis) - 1);
  };

  // Mark the cell of every reachable weight inside the disk.
  const long p_max = static_cast<long>(std::floor(kDiskRadius * md)) + 1;
  for (long p = -p_max; p <= p_max; ++p) {
    if (std::labs(p) > m) continue;
    for (long q = -p_max; q <= p_max; ++q) {
      if (std::labs(p) + std::labs(q) > m) continue;
      if (!HasValidParity(p, q, m)) continue;
      const double x = static_cast<double>(p) / md;
      const double y = static_cast<double>(q) / md;
      if (x * x + y * y > kDiskRadius * kDiskRadius) continue;
      covered[static_cast<std::size_t>(cell_of(x)) * cells_per_axis +
              static_cast<std::size_t>(cell_of(y))] = 1;
    }
  }

  // Count cells whose center lies in the disk, and how many are covered.
  std::size_t in_disk = 0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < cells_per_axis; ++i) {
    const double cx = -kDiskRadius + (static_cast<double>(i) + 0.5) * eps;
    for (std::size_t j = 0; j < cells_per_axis; ++j) {
      const double cy = -kDiskRadius + (static_cast<double>(j) + 0.5) * eps;
      if (cx * cx + cy * cy > kDiskRadius * kDiskRadius) continue;
      ++in_disk;
      hit += covered[i * cells_per_axis + j];
    }
  }
  Check(in_disk > 0, "tolerance grid too coarse");
  const double density =
      static_cast<double>(hit) / static_cast<double>(in_disk);
  obs::Count("wdd.density_evaluations");
  if (obs::ProbesEnabled()) {
    obs::Probe({.kind = obs::ProbeKind::kScalar,
                .site = "wdd.density",
                .values = {{"num_atoms", static_cast<double>(num_atoms)},
                           {"epsilon", eps},
                           {"density", density},
                           {"cells_in_disk", static_cast<double>(in_disk)},
                           {"cells_covered", static_cast<double>(hit)}}});
  }
  return density;
}

double NearestWeightDistance(std::complex<double> target,
                             std::size_t num_atoms) {
  Check(num_atoms > 0, "need at least one atom");
  const auto m = static_cast<long>(num_atoms);
  const double md = static_cast<double>(m);
  const long p0 = std::lround(target.real() * md);
  const long q0 = std::lround(target.imag() * md);
  double best = std::numeric_limits<double>::infinity();
  // Search a small neighborhood around the rounded lattice point; parity
  // and the diamond boundary make the true nearest point at most a couple
  // of steps away.
  for (long dp = -2; dp <= 2; ++dp) {
    for (long dq = -2; dq <= 2; ++dq) {
      long p = p0 + dp;
      long q = q0 + dq;
      if (!HasValidParity(p, q, m)) continue;
      if (std::labs(p) + std::labs(q) > m) continue;
      const std::complex<double> w(static_cast<double>(p) / md,
                                   static_cast<double>(q) / md);
      best = std::min(best, std::abs(w - target));
    }
  }
  return best;
}

}  // namespace metaai::mts
