#include "mts/energy_detector.h"

#include <cmath>

#include "common/check.h"

namespace metaai::mts {

EnergyDetector::EnergyDetector(EnergyDetectorConfig config)
    : config_(config) {
  Check(config_.relative_threshold > 0.0 && config_.relative_threshold < 1.0,
        "relative threshold must be in (0, 1)");
  Check(config_.rc_constant_samples > 0.0, "RC constant must be positive");
  Check(config_.latency_gamma_shape > 0.0 &&
            config_.latency_gamma_scale_us > 0.0,
        "latency distribution parameters must be positive");
}

std::optional<std::size_t> EnergyDetector::DetectArrival(
    std::span<const rf::Complex> samples, double steady_power) const {
  Check(steady_power > 0.0, "steady power must be positive");
  const double threshold = config_.relative_threshold * steady_power;
  const double alpha = 1.0 - std::exp(-1.0 / config_.rc_constant_samples);
  double envelope = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    envelope += alpha * (std::norm(samples[i]) - envelope);
    if (envelope >= threshold) return i;
  }
  return std::nullopt;
}

double EnergyDetector::SampleDetectionLatencyUs(Rng& rng) const {
  return rng.Gamma(config_.latency_gamma_shape,
                   config_.latency_gamma_scale_us);
}

}  // namespace metaai::mts
