// Low-power envelope/energy detector used for coarse-grained clock
// synchronization (§3.5.1). The detector smooths the incident power with a
// single-pole RC filter and asserts its output when the smoothed power
// crosses a threshold; the MCU then starts loading the weight schedule.
//
// Physical detection latency (envelope rise time + comparator/MCU wake
// jitter) is what produces the Gamma-distributed residual sync error the
// paper reports in Fig 12.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "common/rng.h"
#include "rf/signal.h"

namespace metaai::mts {

struct EnergyDetectorConfig {
  /// Detection threshold relative to the steady incident power (0..1).
  double relative_threshold = 0.5;
  /// RC smoothing constant in samples.
  double rc_constant_samples = 8.0;
  /// Gamma distribution of the total residual detection latency, in
  /// microseconds. Defaults reproduce Fig 12 (51.7% of errors > 3 us).
  /// Gamma(2, 1.85) gives P(latency > 3 us) ~= 51.7%.
  double latency_gamma_shape = 2.0;
  double latency_gamma_scale_us = 1.85;
};

class EnergyDetector {
 public:
  explicit EnergyDetector(EnergyDetectorConfig config = {});

  const EnergyDetectorConfig& config() const { return config_; }

  /// Runs the envelope detector over incident samples with the given
  /// steady-state power; returns the first sample index where the smoothed
  /// power crosses the threshold, or nullopt if it never does.
  std::optional<std::size_t> DetectArrival(
      std::span<const rf::Complex> samples, double steady_power) const;

  /// Draws one end-to-end coarse-detection latency (microseconds), i.e.
  /// the sync error left after coarse-grained detection.
  double SampleDetectionLatencyUs(Rng& rng) const;

 private:
  EnergyDetectorConfig config_;
};

}  // namespace metaai::mts
