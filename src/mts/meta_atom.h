// 2-bit programmable meta-atom model.
//
// The paper's prototype embeds two PIN diodes per meta-atom, giving four
// discrete reflection phase states (0, pi/2, pi, 3pi/2) selected by a 2-bit
// code; reflection amplitude is uniform across states (§2.2.2, Fig 14).
#pragma once

#include <complex>
#include <cstdint>

namespace metaai::mts {

using Complex = std::complex<double>;

inline constexpr int kPhaseBits = 2;
inline constexpr int kNumPhaseStates = 1 << kPhaseBits;  // 4

/// 2-bit phase code, 0..3 mapping to {0, pi/2, pi, 3pi/2}.
using PhaseCode = std::uint8_t;

/// Phase shift in radians for a code.
double PhaseForCode(PhaseCode code);

/// Unit phasor e^{j phase(code)}.
Complex PhasorForCode(PhaseCode code);

/// The code whose phase differs by exactly pi (used for the mid-symbol
/// flip of the multipath-cancellation scheme: a 2-bit atom always has an
/// exact antipodal state).
PhaseCode OppositeCode(PhaseCode code);

/// Nearest discrete code for an arbitrary phase in radians.
PhaseCode NearestCode(double phase_rad);

}  // namespace metaai::mts
