#include "serve/runtime.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/obs.h"
#include "obs/parallel.h"

namespace metaai::serve {
namespace {

/// Nearest-rank percentile (q in (0, 1]) of an unsorted sample.
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(rank > 0 ? rank - 1 : 0, values.size() - 1)];
}

void CheckTraceOrdered(std::span<const ServeRequest> requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    Check(requests[i].arrival_s >= requests[i - 1].arrival_s,
          "request trace must have non-decreasing arrival times");
  }
}

void CountRejection(ServeStats& stats, RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      break;
    case RejectReason::kUnknownClient:
      ++stats.rejected_unknown_client;
      obs::Count("serve.rejected.unknown_client");
      break;
    case RejectReason::kBadInput:
      ++stats.rejected_bad_input;
      obs::Count("serve.rejected.bad_input");
      break;
    case RejectReason::kQueueFull:
      ++stats.rejected_queue_full;
      obs::Count("serve.rejected.queue_full");
      break;
  }
}

ServeResponse Rejected(const ServeRequest& request, RejectReason reason) {
  return {.id = request.id,
          .client = request.client,
          .predicted = -1,
          .rejected = reason,
          .arrival_s = request.arrival_s};
}

/// Fills the percentile/accuracy fields of `stats` from the final
/// response trace.
void FinalizeStats(ServeStats& stats, std::span<const ServeResponse> responses,
                   std::span<const ServeRequest> requests) {
  std::vector<double> waits;
  std::vector<double> latencies;
  waits.reserve(responses.size());
  latencies.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const ServeResponse& response = responses[i];
    if (response.rejected != RejectReason::kNone) continue;
    ++stats.served;
    waits.push_back(response.start_s - response.arrival_s);
    latencies.push_back(response.finish_s - response.arrival_s);
    stats.virtual_duration_s =
        std::max(stats.virtual_duration_s, response.finish_s);
    if (requests[i].label >= 0) {
      ++stats.labeled;
      if (response.predicted == requests[i].label) ++stats.correct;
    }
  }
  stats.queue_wait_p50_s = Percentile(waits, 0.50);
  stats.queue_wait_p99_s = Percentile(waits, 0.99);
  stats.latency_p50_s = Percentile(latencies, 0.50);
  stats.latency_p99_s = Percentile(latencies, 0.99);

  static const obs::HistogramSpec kTimeBuckets =
      obs::HistogramSpec::Exponential(1e-5, 2.0, 24);
  for (const double wait : waits) {
    obs::Observe("serve.queue_wait_s", wait, kTimeBuckets);
  }
  for (const double latency : latencies) {
    obs::Observe("serve.latency_s", latency, kTimeBuckets);
  }
  obs::Count("serve.served", stats.served);
  obs::SetGauge("serve.virtual_duration_s", stats.virtual_duration_s);
}

}  // namespace

Runtime::Runtime(const mts::Metasurface& surface,
                 std::vector<ClientSpec> clients, RuntimeOptions options)
    : surface_(surface), options_(std::move(options)) {
  Check(!clients.empty(), "serving runtime needs at least one client");
  Check(options_.queue_capacity > 0, "queue capacity must be positive");
  Check(options_.frame_budget > 0, "frame budget must be positive");
  std::vector<core::DeviceSpec> devices;
  devices.reserve(clients.size());
  for (ClientSpec& client : clients) {
    input_dims_.push_back(client.model.input_dim());
    core::DeploymentOptions deployment = client.deployment;
    deployment.mapping.cache = options_.cache;
    devices.push_back({.name = std::move(client.name),
                       .model = std::move(client.model),
                       .link = std::move(client.link),
                       .options = std::move(deployment)});
  }
  scheduler_ = std::make_unique<core::SharedSurfaceScheduler>(
      surface_, std::move(devices), options_.scheduler);
}

ServeResult Runtime::Run(std::span<const ServeRequest> requests,
                         const sim::SyncModel& sync, Rng& rng) const {
  CheckTraceOrdered(requests);
  const obs::ScopedSpan span = obs::Span("serve.run");
  span.Arg("requests", static_cast<double>(requests.size()));
  obs::Count("serve.requests", requests.size());

  ServeResult result;
  result.stats.submitted = requests.size();
  result.responses.resize(requests.size());
  std::vector<Rng> rngs = par::ForkRngs(rng, requests.size());

  const double guard_s = options_.scheduler.guard_interval_s;
  std::vector<std::deque<std::size_t>> queues(num_clients());
  std::size_t next = 0;
  double clock_s = 0.0;

  static const obs::HistogramSpec kBatchBuckets =
      obs::HistogramSpec::Linear(0.0, 32.0, 16);

  // One dispatched inference: request `index` transmitted in device
  // `client`'s slot over [start_s, finish_s) of the virtual clock.
  struct WorkItem {
    std::size_t index = 0;
    std::size_t client = 0;
    double start_s = 0.0;
    double finish_s = 0.0;
  };

  while (true) {
    // Admit everything that has arrived by the virtual clock.
    while (next < requests.size() && requests[next].arrival_s <= clock_s) {
      const ServeRequest& request = requests[next];
      RejectReason reason = RejectReason::kNone;
      if (request.client >= num_clients()) {
        reason = RejectReason::kUnknownClient;
      } else if (request.pixels.size() != input_dims_[request.client]) {
        reason = RejectReason::kBadInput;
      } else if (queues[request.client].size() >= options_.queue_capacity) {
        reason = RejectReason::kQueueFull;
      }
      if (reason == RejectReason::kNone) {
        queues[request.client].push_back(next);
        obs::Count("serve.admitted");
      } else {
        result.responses[next] = Rejected(request, reason);
        CountRejection(result.stats, reason);
      }
      ++next;
    }

    std::vector<std::size_t> pending(num_clients(), 0);
    bool any_pending = false;
    for (std::size_t c = 0; c < num_clients(); ++c) {
      pending[c] = queues[c].size();
      any_pending = any_pending || pending[c] > 0;
    }
    if (!any_pending) {
      if (next >= requests.size()) break;
      // Idle: jump to the next arrival.
      clock_s = std::max(clock_s, requests[next].arrival_s);
      continue;
    }

    // Build and dispatch one batched TDMA frame.
    const std::vector<std::size_t> granted =
        core::AllocateSlots(pending, options_.frame_budget);
    const std::vector<core::ScheduledSlot> frame =
        scheduler_->BuildFrame(granted);
    std::vector<WorkItem> work;
    std::size_t slot_index = 0;
    std::size_t dispatched = 0;
    for (std::size_t c = 0; c < num_clients(); ++c) {
      if (granted[c] == 0) continue;
      const core::ScheduledSlot& slot = frame[slot_index++];
      const double per_inference_s =
          slot.duration_s / static_cast<double>(slot.batch);
      for (std::size_t k = 0; k < granted[c]; ++k) {
        const std::size_t index = queues[c].front();
        queues[c].pop_front();
        const double start_s =
            clock_s + slot.start_s + static_cast<double>(k) * per_inference_s;
        work.push_back({.index = index,
                        .client = c,
                        .start_s = start_s,
                        .finish_s = start_s + per_inference_s});
      }
      dispatched += granted[c];
    }
    obs::Count("serve.frames");
    obs::Count("serve.slots", frame.size());
    obs::Observe("serve.frame_batch", static_cast<double>(dispatched),
                 kBatchBuckets);
    if (obs::ProbesEnabled()) {
      obs::Probe({.kind = obs::ProbeKind::kServe,
                  .site = "serve.frame",
                  .values = {{"clock_s", clock_s},
                             {"slots", static_cast<double>(frame.size())},
                             {"inferences", static_cast<double>(dispatched)}}});
    }

    // Every work item owns its request's pre-forked stream, so the
    // fan-out is bitwise identical for any thread count.
    obs::DeterministicParallelFor(work.size(), [&](std::size_t w) {
      const WorkItem& item = work[w];
      const ServeRequest& request = requests[item.index];
      Rng& request_rng = rngs[item.index];
      const double offset_us = sync.SampleOffsetUs(request_rng);
      const int predicted = scheduler_->Classify(item.client, request.pixels,
                                                 offset_us, request_rng);
      result.responses[item.index] = {.id = request.id,
                                      .client = request.client,
                                      .predicted = predicted,
                                      .rejected = RejectReason::kNone,
                                      .arrival_s = request.arrival_s,
                                      .start_s = item.start_s,
                                      .finish_s = item.finish_s};
    });
    ++result.stats.frames;
    clock_s += frame.back().start_s + frame.back().duration_s + guard_s;
  }

  FinalizeStats(result.stats, result.responses, requests);
  return result;
}

ServeResult Runtime::RunUnbatched(std::span<const ServeRequest> requests,
                                  const sim::SyncModel& sync,
                                  Rng& rng) const {
  CheckTraceOrdered(requests);
  const obs::ScopedSpan span = obs::Span("serve.run_unbatched");
  span.Arg("requests", static_cast<double>(requests.size()));
  obs::Count("serve.requests", requests.size());

  ServeResult result;
  result.stats.submitted = requests.size();
  result.responses.resize(requests.size());
  std::vector<Rng> rngs = par::ForkRngs(rng, requests.size());

  const double guard_s = options_.scheduler.guard_interval_s;
  double clock_s = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServeRequest& request = requests[i];
    if (request.client >= num_clients()) {
      result.responses[i] = Rejected(request, RejectReason::kUnknownClient);
      CountRejection(result.stats, RejectReason::kUnknownClient);
      continue;
    }
    if (request.pixels.size() != input_dims_[request.client]) {
      result.responses[i] = Rejected(request, RejectReason::kBadInput);
      CountRejection(result.stats, RejectReason::kBadInput);
      continue;
    }
    obs::Count("serve.admitted");
    // One single-inference frame per request: the guard interval and
    // the frame turnaround are paid every time.
    std::vector<std::size_t> unit(num_clients(), 0);
    unit[request.client] = 1;
    const std::vector<core::ScheduledSlot> frame =
        scheduler_->BuildFrame(unit);
    const double start_s = std::max(clock_s, request.arrival_s);
    const double finish_s = start_s + frame.front().duration_s;
    const double offset_us = sync.SampleOffsetUs(rngs[i]);
    const int predicted = scheduler_->Classify(request.client, request.pixels,
                                               offset_us, rngs[i]);
    result.responses[i] = {.id = request.id,
                           .client = request.client,
                           .predicted = predicted,
                           .rejected = RejectReason::kNone,
                           .arrival_s = request.arrival_s,
                           .start_s = start_s,
                           .finish_s = finish_s};
    ++result.stats.frames;
    obs::Count("serve.frames");
    clock_s = finish_s + guard_s;
  }

  FinalizeStats(result.stats, result.responses, requests);
  return result;
}

}  // namespace metaai::serve
