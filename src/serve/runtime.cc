#include "serve/runtime.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/health.h"
#include "obs/obs.h"
#include "obs/parallel.h"
#include "obs/quantiles.h"

namespace metaai::serve {
namespace {

void CheckTraceOrdered(std::span<const ServeRequest> requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    Check(requests[i].arrival_s >= requests[i - 1].arrival_s,
          "request trace must have non-decreasing arrival times");
  }
}

/// Operator-input validation shared by the throwing constructor and
/// TryCreate, so both paths reject exactly the same configurations.
Result<void> ValidateRuntimeConfig(const std::vector<ClientSpec>& clients,
                                   const RuntimeOptions& options) {
  if (clients.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "serving runtime needs at least one client"};
  }
  if (options.queue_capacity == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "queue capacity must be positive"};
  }
  if (options.frame_budget == 0) {
    return Error{ErrorCode::kInvalidArgument, "frame budget must be positive"};
  }
  if (options.warm_start_distance < 0.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "warm-start distance must be non-negative"};
  }
  for (const ClientSpec& client : clients) {
    if (client.slo_latency_s < 0.0) {
      return Error{ErrorCode::kInvalidArgument,
                   "SLO latency must be non-negative (client '" + client.name +
                       "')"};
    }
  }
  return Ok();
}

void CountRejection(ServeStats& stats, RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      break;
    case RejectReason::kUnknownClient:
      ++stats.rejected_unknown_client;
      obs::Count("serve.rejected.unknown_client");
      break;
    case RejectReason::kBadInput:
      ++stats.rejected_bad_input;
      obs::Count("serve.rejected.bad_input");
      break;
    case RejectReason::kQueueFull:
      ++stats.rejected_queue_full;
      obs::Count("serve.rejected.queue_full");
      break;
  }
}

ServeResponse Rejected(const ServeRequest& request, RejectReason reason) {
  return {.id = request.id,
          .client = request.client,
          .predicted = -1,
          .rejected = reason,
          .arrival_s = request.arrival_s};
}

/// One AlertEngine per tenant (empty when health monitoring is off),
/// all running the same rule set. Engines are fed exclusively from the
/// serial control loop, so the merged alert stream is deterministic.
std::vector<obs::health::AlertEngine> BuildHealthEngines(
    const RuntimeOptions& options, std::size_t num_clients) {
  std::vector<obs::health::AlertEngine> engines;
  if (!options.health) return engines;
  const std::vector<obs::health::AlertRule> rules =
      options.health_rules.empty() ? obs::health::DefaultLinkHealthRules()
                                   : options.health_rules;
  engines.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    obs::health::AlertEngine engine(static_cast<std::int32_t>(c));
    for (const obs::health::AlertRule& rule : rules) {
      engine.AddRule(rule);
    }
    engines.push_back(std::move(engine));
  }
  return engines;
}

/// Fills the percentile/SLO/energy/accuracy fields of `stats` from the
/// final response trace and the lifecycle traces (`traces` is indexed
/// by submission order; only served entries are meaningful), compacts
/// the served traces into `log`, and emits the serve.* instruments —
/// all from the serial epilogue, so histogram sums and probe order are
/// thread-count invariant.
void FinalizeStats(ServeStats& stats, std::span<const ServeResponse> responses,
                   std::span<const ServeRequest> requests,
                   std::span<const obs::RequestTrace> traces,
                   std::span<const double> margins,
                   std::span<obs::health::AlertEngine> engines,
                   std::vector<std::string> tenant_names,
                   obs::RequestLog& log,
                   std::vector<obs::health::Alert>& alerts) {
  log.tenants = std::move(tenant_names);
  std::vector<double> waits;
  std::vector<double> latencies;
  std::vector<double> served_margins;
  std::vector<std::vector<double>> tenant_margins(log.tenants.size());
  waits.reserve(responses.size());
  latencies.reserve(responses.size());
  served_margins.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const ServeResponse& response = responses[i];
    if (response.rejected != RejectReason::kNone) continue;
    const obs::RequestTrace& trace = traces[i];
    ++stats.served;
    waits.push_back(response.start_s - response.arrival_s);
    const double latency = trace.Latency();
    latencies.push_back(latency);
    stats.virtual_duration_s =
        std::max(stats.virtual_duration_s, trace.arrival_s + latency);
    stats.energy_total_j += trace.energy_j;
    if (requests[i].label >= 0) {
      ++stats.labeled;
      if (response.predicted == requests[i].label) ++stats.correct;
    }
    served_margins.push_back(margins[i]);
    tenant_margins[trace.tenant].push_back(margins[i]);
    log.traces.push_back(trace);
  }

  const obs::TailDigest wait_tails = obs::DigestTails(waits);
  stats.queue_wait_p50_s = wait_tails.p50;
  stats.queue_wait_p99_s = wait_tails.p99;
  stats.queue_wait_p999_s = wait_tails.p999;
  const obs::TailDigest latency_tails = obs::DigestTails(latencies);
  stats.latency_p50_s = latency_tails.p50;
  stats.latency_p99_s = latency_tails.p99;
  stats.latency_p999_s = latency_tails.p999;
  if (stats.served > 0) {
    stats.energy_per_inference_j =
        stats.energy_total_j / static_cast<double>(stats.served);
  }

  // Per-tenant accounting + SLO verdicts, in submission order so the
  // kSloViolation probe stream is deterministic.
  stats.tenants.resize(log.tenants.size());
  std::vector<std::vector<double>> tenant_latencies(log.tenants.size());
  for (std::size_t t = 0; t < log.tenants.size(); ++t) {
    stats.tenants[t].name = log.tenants[t];
  }
  for (const obs::RequestTrace& trace : log.traces) {
    TenantStats& tenant = stats.tenants[trace.tenant];
    tenant.slo_s = trace.slo_s;
    tenant.cache_hit = trace.cache_hit;
    ++tenant.served;
    tenant.energy_j += trace.energy_j;
    tenant_latencies[trace.tenant].push_back(trace.Latency());
    if (trace.SloViolated()) {
      ++tenant.slo_violations;
      ++stats.slo_violations;
      obs::Count("serve.slo.violations");
      if (!engines.empty()) {
        // Violation magnitude as the latency/target ratio, at the
        // request's virtual readout time (matches the probe adapter in
        // obs/health.h).
        engines[trace.tenant].Observe(
            obs::health::kSignalSloViolation,
            trace.arrival_s + trace.Latency(),
            trace.slo_s > 0.0 ? trace.Latency() / trace.slo_s
                              : trace.Latency(),
            alerts);
      }
      if (obs::ProbesEnabled()) {
        obs::Probe({.kind = obs::ProbeKind::kSloViolation,
                    .site = "serve.slo",
                    .values = {{"id", static_cast<double>(trace.id)},
                               {"tenant", static_cast<double>(trace.tenant)},
                               {"latency_s", trace.Latency()},
                               {"slo_s", trace.slo_s}}});
      }
    } else {
      ++tenant.slo_within;
      ++stats.slo_within;
      obs::Count("serve.slo.within");
    }
  }
  for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
    const obs::TailDigest tails = obs::DigestTails(tenant_latencies[t]);
    stats.tenants[t].latency_p50_s = tails.p50;
    stats.tenants[t].latency_p99_s = tails.p99;
    stats.tenants[t].latency_p999_s = tails.p999;
    // A tenant with no served requests has no margin sample; 0.0 is the
    // documented "no data" value for the stats field (count-gate on
    // TenantStats::served to distinguish).
    stats.tenants[t].margin_p50 =
        obs::TryNearestRankPercentile(tenant_margins[t], 0.50).value_or(0.0);
  }
  if (stats.virtual_duration_s > 0.0) {
    stats.goodput_slo_rps = static_cast<double>(stats.slo_within) /
                            stats.virtual_duration_s;
  }

  // Health accounting: the engines have seen every signal by now (the
  // SLO loop above was the last feed), so the alert stream is final.
  stats.margin_p50 =
      obs::TryNearestRankPercentile(served_margins, 0.50).value_or(0.0);
  for (const obs::health::Alert& alert : alerts) {
    ++stats.alerts;
    const bool drift = alert.kind == obs::health::AlertKind::kDriftDetected;
    if (drift) ++stats.drift_alerts;
    if (alert.tenant >= 0 &&
        static_cast<std::size_t>(alert.tenant) < stats.tenants.size()) {
      TenantStats& tenant = stats.tenants[static_cast<std::size_t>(
          alert.tenant)];
      ++tenant.alerts;
      if (drift) ++tenant.drift_alerts;
    }
  }
  obs::Count("health.alerts", stats.alerts);
  obs::Count("health.drift_alerts", stats.drift_alerts);
  obs::SetGauge("health.alerts_total", static_cast<double>(stats.alerts));
  obs::SetGauge("health.margin_p50", stats.margin_p50);

  static const obs::HistogramSpec kTimeBuckets =
      obs::HistogramSpec::Exponential(1e-5, 2.0, 24);
  static const obs::HistogramSpec kEnergyBuckets =
      obs::HistogramSpec::Exponential(1e-9, 2.0, 30);
  for (const double wait : waits) {
    obs::Observe("serve.queue_wait_s", wait, kTimeBuckets);
  }
  for (const double latency : latencies) {
    obs::Observe("serve.latency_s", latency, kTimeBuckets);
  }
  for (const obs::RequestTrace& trace : log.traces) {
    for (std::size_t s = 0; s < obs::kNumRequestStages; ++s) {
      obs::Observe("serve.stage." +
                       std::string(obs::RequestStageName(
                           static_cast<obs::RequestStage>(s))) +
                       "_s",
                   trace.stage_s[s], kTimeBuckets);
    }
    obs::Observe("serve.energy_j", trace.energy_j, kEnergyBuckets);
  }
  obs::Count("serve.served", stats.served);
  obs::SetGauge("serve.virtual_duration_s", stats.virtual_duration_s);
  obs::SetGauge("serve.goodput_slo_rps", stats.goodput_slo_rps);
  obs::SetGauge("serve.energy_per_inference_j", stats.energy_per_inference_j);
}

}  // namespace

Runtime::Runtime(mts::LayerGraph graph, std::vector<ClientSpec> clients,
                 RuntimeOptions options)
    : graph_(std::make_unique<const mts::LayerGraph>(std::move(graph))),
      options_(std::move(options)), energy_(options_.energy) {
  ValidateRuntimeConfig(clients, options_).value();
  Init(std::move(clients));
}

// The deprecated shim may be defined (and may delegate) without
// tripping -Wdeprecated-declarations; only *callers* see the warning.
Runtime::Runtime(const mts::Metasurface& surface,
                 std::vector<ClientSpec> clients, RuntimeOptions options)
    : Runtime(mts::LayerGraph::FromSurface(surface), std::move(clients),
              std::move(options)) {}

Result<Runtime> Runtime::TryCreate(mts::LayerGraph graph,
                                   std::vector<ClientSpec> clients,
                                   RuntimeOptions options) {
  if (Result<void> ok = ValidateRuntimeConfig(clients, options); !ok) {
    return ok.error();
  }
  return Runtime(std::move(graph), std::move(clients), std::move(options));
}

void Runtime::Init(std::vector<ClientSpec> clients) {
  std::vector<core::DeviceSpec> devices;
  devices.reserve(clients.size());
  for (ClientSpec& client : clients) {
    input_dims_.push_back(client.model.input_dim());
    slo_targets_.push_back(client.slo_latency_s);
    core::DeploymentOptions deployment = client.deployment;
    deployment.mapping.cache = options_.cache.get();
    if (options_.warm_start_distance > 0.0) {
      deployment.mapping.warm_start_distance = options_.warm_start_distance;
    }
    devices.push_back({.name = std::move(client.name),
                       .model = std::move(client.model),
                       .link = std::move(client.link),
                       .options = std::move(deployment)});
  }
  scheduler_ = std::make_unique<core::SharedSurfaceScheduler>(
      *graph_, std::move(devices), options_.scheduler);
  // The scheduler builds deployments serially in client order, so the
  // per-tenant cache provenance below is deterministic.
  for (std::size_t c = 0; c < num_clients(); ++c) {
    mapping_from_cache_.push_back(
        scheduler_->deployment(c).schedules().from_cache);
  }
}

ServeResult Runtime::Run(std::span<const ServeRequest> requests,
                         const sim::SyncModel& sync, Rng& rng) const {
  std::vector<Rng> rngs = par::ForkRngs(rng, requests.size());
  return Run(requests, sync, std::span<Rng>(rngs));
}

ServeResult Runtime::Run(std::span<const ServeRequest> requests,
                         const sim::SyncModel& sync,
                         std::span<Rng> request_rngs) const {
  CheckTraceOrdered(requests);
  Check(request_rngs.size() == requests.size(),
        "Run needs one Rng stream per request");
  const obs::ScopedSpan span = obs::Span("serve.run");
  span.Arg("requests", static_cast<double>(requests.size()));
  obs::Count("serve.requests", requests.size());

  ServeResult result;
  result.stats.submitted = requests.size();
  result.responses.resize(requests.size());
  std::span<Rng> rngs = request_rngs;
  // Per-request soft-decision margins (the label-free accuracy proxy),
  // filled by the workers and consumed by the serial health loop.
  std::vector<double> margins(requests.size(), 0.0);
  std::vector<obs::health::AlertEngine> engines =
      BuildHealthEngines(options_, num_clients());

  const double guard_s = options_.scheduler.guard_interval_s;
  const double demod_s = energy_.DemodLatencyS();
  std::vector<std::deque<std::size_t>> queues(num_clients());
  std::size_t next = 0;
  double clock_s = 0.0;
  // Lifecycle traces by submission index; only served entries end up in
  // the request log. admit_clock_s remembers when admission picked each
  // request up so queue_wait can be charged at dispatch.
  std::vector<obs::RequestTrace> traces(requests.size());
  std::vector<double> admit_clock_s(requests.size(), 0.0);
  std::size_t admitted = 0;
  std::size_t dispatched_total = 0;

  static const obs::HistogramSpec kBatchBuckets =
      obs::HistogramSpec::Linear(0.0, 32.0, 16);

  // One dispatched inference: request `index` transmitted in device
  // `client`'s slot over [start_s, finish_s) of the virtual clock.
  struct WorkItem {
    std::size_t index = 0;
    std::size_t client = 0;
    double start_s = 0.0;
    double finish_s = 0.0;
  };

  while (true) {
    // Admit everything that has arrived by the virtual clock.
    while (next < requests.size() && requests[next].arrival_s <= clock_s) {
      const ServeRequest& request = requests[next];
      RejectReason reason = RejectReason::kNone;
      if (request.client >= num_clients()) {
        reason = RejectReason::kUnknownClient;
      } else if (request.pixels.size() != input_dims_[request.client]) {
        reason = RejectReason::kBadInput;
      } else if (queues[request.client].size() >= options_.queue_capacity) {
        reason = RejectReason::kQueueFull;
      }
      if (reason == RejectReason::kNone) {
        queues[request.client].push_back(next);
        obs::Count("serve.admitted");
        ++admitted;
        obs::RequestTrace& trace = traces[next];
        trace.id = request.id;
        trace.tenant = static_cast<std::uint32_t>(request.client);
        trace.cache_hit = mapping_from_cache_[request.client];
        trace.arrival_s = request.arrival_s;
        trace.slo_s = slo_targets_[request.client];
        trace.stage(obs::RequestStage::kAdmission) =
            clock_s - request.arrival_s;
        admit_clock_s[next] = clock_s;
      } else {
        result.responses[next] = Rejected(request, reason);
        CountRejection(result.stats, reason);
      }
      ++next;
    }

    std::vector<std::size_t> pending(num_clients(), 0);
    bool any_pending = false;
    for (std::size_t c = 0; c < num_clients(); ++c) {
      pending[c] = queues[c].size();
      any_pending = any_pending || pending[c] > 0;
    }
    if (!any_pending) {
      if (next >= requests.size()) break;
      // Idle: jump to the next arrival.
      clock_s = std::max(clock_s, requests[next].arrival_s);
      continue;
    }

    // Build and dispatch one batched TDMA frame.
    const std::vector<std::size_t> granted =
        core::AllocateSlots(pending, options_.frame_budget);
    const std::vector<core::ScheduledSlot> frame =
        scheduler_->BuildFrame(granted);
    std::vector<WorkItem> work;
    std::size_t slot_index = 0;
    std::size_t dispatched = 0;
    std::size_t dispatched_cached = 0;
    for (std::size_t c = 0; c < num_clients(); ++c) {
      if (granted[c] == 0) continue;
      const core::ScheduledSlot& slot = frame[slot_index++];
      const double per_inference_s =
          slot.duration_s / static_cast<double>(slot.batch);
      const sim::InferenceEnergy inference_energy = energy_.OtaInferenceEnergy(
          per_inference_s, slot.rounds * slot.symbols_per_round,
          scheduler_->deployment(c).link().config().budget.tx_power_dbm);
      for (std::size_t k = 0; k < granted[c]; ++k) {
        const std::size_t index = queues[c].front();
        queues[c].pop_front();
        const double start_s =
            clock_s + slot.start_s + static_cast<double>(k) * per_inference_s;
        work.push_back({.index = index,
                        .client = c,
                        .start_s = start_s,
                        .finish_s = start_s + per_inference_s});
        obs::RequestTrace& trace = traces[index];
        trace.stage(obs::RequestStage::kQueueWait) =
            clock_s - admit_clock_s[index];
        trace.stage(obs::RequestStage::kBatching) = start_s - clock_s;
        trace.stage(obs::RequestStage::kAirtime) = per_inference_s;
        trace.stage(obs::RequestStage::kDemod) = demod_s;
        trace.energy_j = inference_energy.total_j();
      }
      dispatched += granted[c];
      if (mapping_from_cache_[c]) dispatched_cached += granted[c];
    }
    obs::Count("serve.frames");
    obs::Count("serve.slots", frame.size());
    obs::Observe("serve.frame_batch", static_cast<double>(dispatched),
                 kBatchBuckets);
    if (obs::ProbesEnabled()) {
      obs::Probe({.kind = obs::ProbeKind::kServe,
                  .site = "serve.frame",
                  .values = {{"clock_s", clock_s},
                             {"slots", static_cast<double>(frame.size())},
                             {"inferences", static_cast<double>(dispatched)}}});
    }
    dispatched_total += dispatched;
    std::size_t queue_depth = 0;
    for (const std::deque<std::size_t>& queue : queues) {
      queue_depth += queue.size();
    }
    result.timeseries.push_back(
        {.t_s = clock_s,
         .values = {
             {"queue_depth", static_cast<double>(queue_depth)},
             {"in_flight", static_cast<double>(dispatched)},
             {"frame_slots", static_cast<double>(frame.size())},
             {"frame_utilization",
              static_cast<double>(dispatched) /
                  static_cast<double>(options_.frame_budget)},
             {"cache_hit_rate", dispatched > 0
                                    ? static_cast<double>(dispatched_cached) /
                                          static_cast<double>(dispatched)
                                    : 0.0},
             {"admitted", static_cast<double>(admitted)},
             {"served", static_cast<double>(dispatched_total)},
             {"rejected", static_cast<double>(result.stats.rejected())},
             {"alerts", static_cast<double>(result.alerts.size())}}});

    // Every work item owns its request's pre-forked stream, so the
    // fan-out is bitwise identical for any thread count.
    obs::DeterministicParallelFor(work.size(), [&](std::size_t w) {
      const WorkItem& item = work[w];
      const ServeRequest& request = requests[item.index];
      Rng& request_rng = rngs[item.index];
      const double offset_us = sync.SampleOffsetUs(request_rng);
      const core::SoftDecision decision = scheduler_->ClassifyWithMargin(
          item.client, request.pixels, offset_us, request_rng);
      margins[item.index] = decision.margin;
      result.responses[item.index] = {.id = request.id,
                                      .client = request.client,
                                      .predicted = decision.predicted,
                                      .rejected = RejectReason::kNone,
                                      .arrival_s = request.arrival_s,
                                      .start_s = item.start_s,
                                      .finish_s = item.finish_s};
    });
    // Health evaluation stays in the serial control loop: feed each
    // dispatched request's margin in slot order at its virtual readout
    // time, so the alert stream is identical for any thread count.
    if (!engines.empty()) {
      for (const WorkItem& item : work) {
        engines[item.client].Observe(obs::health::kSignalAccuracyProxy,
                                     item.finish_s + demod_s,
                                     margins[item.index], result.alerts);
      }
    }
    ++result.stats.frames;
    clock_s += frame.back().start_s + frame.back().duration_s + guard_s;
  }

  std::vector<std::string> tenant_names;
  for (std::size_t c = 0; c < num_clients(); ++c) {
    tenant_names.push_back(scheduler_->device_name(c));
  }
  FinalizeStats(result.stats, result.responses, requests, traces, margins,
                engines, std::move(tenant_names), result.request_log,
                result.alerts);
  return result;
}

ServeResult Runtime::RunUnbatched(std::span<const ServeRequest> requests,
                                  const sim::SyncModel& sync,
                                  Rng& rng) const {
  std::vector<Rng> rngs = par::ForkRngs(rng, requests.size());
  return RunUnbatched(requests, sync, std::span<Rng>(rngs));
}

ServeResult Runtime::RunUnbatched(std::span<const ServeRequest> requests,
                                  const sim::SyncModel& sync,
                                  std::span<Rng> request_rngs) const {
  CheckTraceOrdered(requests);
  Check(request_rngs.size() == requests.size(),
        "RunUnbatched needs one Rng stream per request");
  const obs::ScopedSpan span = obs::Span("serve.run_unbatched");
  span.Arg("requests", static_cast<double>(requests.size()));
  obs::Count("serve.requests", requests.size());

  ServeResult result;
  result.stats.submitted = requests.size();
  result.responses.resize(requests.size());
  std::span<Rng> rngs = request_rngs;
  std::vector<double> margins(requests.size(), 0.0);
  std::vector<obs::health::AlertEngine> engines =
      BuildHealthEngines(options_, num_clients());

  const double guard_s = options_.scheduler.guard_interval_s;
  const double demod_s = energy_.DemodLatencyS();
  std::vector<obs::RequestTrace> traces(requests.size());
  std::size_t admitted = 0;
  double clock_s = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServeRequest& request = requests[i];
    if (request.client >= num_clients()) {
      result.responses[i] = Rejected(request, RejectReason::kUnknownClient);
      CountRejection(result.stats, RejectReason::kUnknownClient);
      continue;
    }
    if (request.pixels.size() != input_dims_[request.client]) {
      result.responses[i] = Rejected(request, RejectReason::kBadInput);
      CountRejection(result.stats, RejectReason::kBadInput);
      continue;
    }
    obs::Count("serve.admitted");
    ++admitted;
    // One single-inference frame per request: the guard interval and
    // the frame turnaround are paid every time.
    std::vector<std::size_t> unit(num_clients(), 0);
    unit[request.client] = 1;
    const std::vector<core::ScheduledSlot> frame =
        scheduler_->BuildFrame(unit);
    const core::ScheduledSlot& slot = frame.front();
    const double start_s = std::max(clock_s, request.arrival_s);
    const double finish_s = start_s + slot.duration_s;
    const double offset_us = sync.SampleOffsetUs(rngs[i]);
    const core::SoftDecision decision = scheduler_->ClassifyWithMargin(
        request.client, request.pixels, offset_us, rngs[i]);
    margins[i] = decision.margin;
    if (!engines.empty()) {
      engines[request.client].Observe(obs::health::kSignalAccuracyProxy,
                                      finish_s + demod_s, decision.margin,
                                      result.alerts);
    }
    result.responses[i] = {.id = request.id,
                           .client = request.client,
                           .predicted = decision.predicted,
                           .rejected = RejectReason::kNone,
                           .arrival_s = request.arrival_s,
                           .start_s = start_s,
                           .finish_s = finish_s};
    obs::RequestTrace& trace = traces[i];
    trace.id = request.id;
    trace.tenant = static_cast<std::uint32_t>(request.client);
    trace.cache_hit = mapping_from_cache_[request.client];
    trace.arrival_s = request.arrival_s;
    trace.slo_s = slo_targets_[request.client];
    // No admission scan and no coalescing in the naive path: the whole
    // arrival -> transmission gap is queueing behind earlier requests.
    trace.stage(obs::RequestStage::kQueueWait) = start_s - request.arrival_s;
    trace.stage(obs::RequestStage::kAirtime) = slot.duration_s;
    trace.stage(obs::RequestStage::kDemod) = demod_s;
    trace.energy_j =
        energy_
            .OtaInferenceEnergy(
                slot.duration_s, slot.rounds * slot.symbols_per_round,
                scheduler_->deployment(request.client)
                    .link()
                    .config()
                    .budget.tx_power_dbm)
            .total_j();
    ++result.stats.frames;
    obs::Count("serve.frames");
    result.timeseries.push_back(
        {.t_s = start_s,
         .values = {
             {"queue_depth", 0.0},
             {"in_flight", 1.0},
             {"frame_slots", 1.0},
             {"frame_utilization",
              1.0 / static_cast<double>(options_.frame_budget)},
             {"cache_hit_rate", trace.cache_hit ? 1.0 : 0.0},
             {"admitted", static_cast<double>(admitted)},
             {"served", static_cast<double>(admitted)},
             {"rejected", static_cast<double>(result.stats.rejected())},
             {"alerts", static_cast<double>(result.alerts.size())}}});
    clock_s = finish_s + guard_s;
  }

  std::vector<std::string> tenant_names;
  for (std::size_t c = 0; c < num_clients(); ++c) {
    tenant_names.push_back(scheduler_->device_name(c));
  }
  FinalizeStats(result.stats, result.responses, requests, traces, margins,
                engines, std::move(tenant_names), result.request_log,
                result.alerts);
  return result;
}

}  // namespace metaai::serve
