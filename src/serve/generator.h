// Seeded workload generation for the serving runtime: N tenants with
// composable arrival processes, each drawing sample pixel vectors
// uniformly from its dataset.
//
// The baseline is Poisson (exponential inter-arrival times). A
// WorkloadSpec composes three open-loop stressors on top:
//
//  - heavy-tailed arrivals: Pareto inter-arrival times mean-matched to
//    arrival_rate_hz (shape alpha > 1, scale x_m = (alpha-1)/(alpha*rate)),
//    so the *average* load is unchanged but bursts cluster and gaps
//    stretch — the classic self-similar edge-traffic shape;
//  - diurnal waves: a sinusoidal rate modulation
//    rate(t) = rate * (1 + A*sin(2*pi*t/period)) with A in [0, 1);
//  - flash crowds: windows [start_s, start_s + duration_s) where the
//    instantaneous rate is multiplied by `multiplier` (overlapping
//    windows compound).
//
// Rate modulation is applied by *time-warping* the base draw
// (dt = dt_base / m(t)), never by extra Rng draws, so a spec with no
// modulation reproduces the pure-Poisson trace bit for bit — the legacy
// GenerateWorkload overload delegates here and its committed bench
// baselines do not move.
//
// Determinism contract: each tenant's arrival process and sample draws
// come from its own pre-forked Rng stream (fork order = tenant order),
// so the generated trace is bitwise identical regardless of how the
// per-tenant streams are later interleaved, and adding a tenant never
// perturbs the others' traces.
#pragma once

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nn/types.h"
#include "serve/request.h"

namespace metaai::serve {

/// One client's demand model (legacy pure-Poisson form).
struct ClientWorkload {
  /// Mean request rate (Poisson arrivals).
  double arrival_rate_hz = 100.0;
  /// Sample source; pixels (and labels) are drawn uniformly from it.
  /// Must be non-null and non-empty.
  const nn::RealDataset* samples = nullptr;
};

/// A transient rate spike: while t is in [start_s, start_s + duration_s)
/// the tenant's instantaneous arrival rate is multiplied by
/// `multiplier`. Overlapping crowds compound multiplicatively.
struct FlashCrowd {
  double start_s = 0.0;
  double duration_s = 0.0;
  double multiplier = 1.0;
};

/// One tenant's composable demand model. Defaults reproduce
/// ClientWorkload's pure Poisson process bit for bit.
struct TenantWorkload {
  /// Mean request rate of the *unmodulated* process.
  double arrival_rate_hz = 100.0;
  /// Sample source; pixels (and labels) are drawn uniformly from it.
  /// Must be non-null and non-empty.
  const nn::RealDataset* samples = nullptr;
  /// 0 = exponential inter-arrivals (Poisson). > 1 = Pareto
  /// inter-arrivals with this shape, mean-matched to arrival_rate_hz
  /// (smaller shape = heavier tail; 1.5-2.5 is the interesting range).
  /// Values in (0, 1] are invalid (infinite-mean Pareto).
  double pareto_shape = 0.0;
  /// Relative amplitude A in [0, 1) of the diurnal sine wave; 0 = flat.
  double diurnal_amplitude = 0.0;
  /// Period of the diurnal wave (must be positive when amplitude > 0).
  double diurnal_period_s = 86400.0;
  /// Transient rate spikes layered on top.
  std::vector<FlashCrowd> flash_crowds;
};

/// A full open-loop trace description: N tenants over [0, duration_s).
struct WorkloadSpec {
  std::vector<TenantWorkload> tenants;
  double duration_s = 1.0;
};

/// The instantaneous rate multiplier m(t) >= 0 for a tenant (diurnal
/// wave x active flash crowds); exactly 1.0 for an unmodulated tenant.
/// Exposed for tests and for capacity planning in metaai::fleet.
double RateMultiplier(const TenantWorkload& tenant, double t_s);

/// Generates the merged request trace of all tenants over
/// [0, spec.duration_s), sorted by arrival time (ties broken by tenant
/// index), with ids assigned in sorted order. Typed errors
/// (ErrorCode::kInvalidArgument) for non-positive durations/rates,
/// missing sample sets, Pareto shapes in (0, 1], diurnal amplitudes
/// outside [0, 1) and malformed flash-crowd windows.
Result<std::vector<ServeRequest>> GenerateWorkload(const WorkloadSpec& spec,
                                                   Rng& rng);

/// Legacy pure-Poisson form; delegates to the WorkloadSpec overload
/// (bitwise-identical traces for the same clients/duration/rng).
Result<std::vector<ServeRequest>> GenerateWorkload(
    std::span<const ClientWorkload> clients, double duration_s, Rng& rng);

}  // namespace metaai::serve
