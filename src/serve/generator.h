// Seeded workload generation for the serving runtime: N edge clients
// with Poisson arrivals (exponential inter-arrival times), each drawing
// sample pixel vectors uniformly from its dataset.
//
// Determinism contract: each client's arrival process and sample draws
// come from its own pre-forked Rng stream (fork order = client order),
// so the generated trace is bitwise identical regardless of how the
// per-client streams are later interleaved, and adding a client never
// perturbs the others' traces.
#pragma once

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nn/types.h"
#include "serve/request.h"

namespace metaai::serve {

/// One client's demand model.
struct ClientWorkload {
  /// Mean request rate (Poisson arrivals).
  double arrival_rate_hz = 100.0;
  /// Sample source; pixels (and labels) are drawn uniformly from it.
  /// Must be non-null and non-empty.
  const nn::RealDataset* samples = nullptr;
};

/// Generates the merged request trace of all clients over
/// [0, duration_s), sorted by arrival time (ties broken by client
/// index), with ids assigned in sorted order. Typed errors
/// (ErrorCode::kInvalidArgument) for non-positive durations/rates or
/// missing sample sets.
Result<std::vector<ServeRequest>> GenerateWorkload(
    std::span<const ClientWorkload> clients, double duration_s, Rng& rng);

}  // namespace metaai::serve
