// metaai::serve — request/response types for the multi-tenant serving
// runtime.
//
// A ServeRequest is one edge client's inference demand at a virtual
// arrival time; a ServeResponse records what the runtime did with it
// (the prediction plus the virtual-time trajectory through the queue
// and the TDMA frame, or a typed rejection). Everything is plain data:
// the runtime is deterministic, so a request trace fully determines the
// response trace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace metaai::serve {

/// Why admission control refused a request.
enum class RejectReason {
  kNone,           // not rejected
  kUnknownClient,  // client index outside the runtime's client list
  kBadInput,       // pixel vector does not match the client's input dim
  kQueueFull,      // bounded per-client queue at capacity (backpressure)
};

std::string_view RejectReasonName(RejectReason reason);

/// One inference demand from an edge client.
struct ServeRequest {
  std::uint64_t id = 0;
  /// Index into the runtime's client list.
  std::size_t client = 0;
  /// Virtual arrival time (seconds since trace start, non-decreasing
  /// across a trace).
  double arrival_s = 0.0;
  std::vector<double> pixels;
  /// Optional ground truth for accuracy accounting; -1 = unknown.
  int label = -1;
};

/// The runtime's verdict on one request.
struct ServeResponse {
  std::uint64_t id = 0;
  std::size_t client = 0;
  /// Argmax class, or -1 when rejected.
  int predicted = -1;
  RejectReason rejected = RejectReason::kNone;
  double arrival_s = 0.0;
  /// Virtual time the request's OTA transmission started / finished
  /// (0 when rejected).
  double start_s = 0.0;
  double finish_s = 0.0;
};

/// One tenant's slice of a run, aggregated from its lifecycle traces.
struct TenantStats {
  std::string name;
  /// Latency target from the ClientSpec; 0 = no SLO (every served
  /// request counts as within).
  double slo_s = 0.0;
  /// Whether this tenant's mapping was restored from mts::ConfigCache.
  bool cache_hit = false;
  std::size_t served = 0;
  std::size_t slo_within = 0;
  std::size_t slo_violations = 0;
  /// End-to-end (arrival -> readout) nearest-rank percentiles.
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  double energy_j = 0.0;
  /// Online health (obs/health.h): alerts this tenant's engine raised
  /// during the run (drift_alerts counts the kDriftDetected class) and
  /// the median label-free accuracy proxy (soft-decision margin) over
  /// its served requests.
  std::size_t alerts = 0;
  std::size_t drift_alerts = 0;
  double margin_p50 = 0.0;
};

/// Aggregate virtual-time serving statistics for one Run.
struct ServeStats {
  std::size_t submitted = 0;
  std::size_t served = 0;
  std::size_t rejected_unknown_client = 0;
  std::size_t rejected_bad_input = 0;
  std::size_t rejected_queue_full = 0;
  /// TDMA frames dispatched.
  std::size_t frames = 0;
  /// Virtual time when the last inference finished its server-side
  /// readout (end-to-end horizon).
  double virtual_duration_s = 0.0;
  /// Arrival -> slot start (queueing + frame position), nearest-rank
  /// percentiles over served requests.
  double queue_wait_p50_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double queue_wait_p999_s = 0.0;
  /// End-to-end latency (arrival -> readout): the lifecycle-trace stage
  /// sum, so queueing + batching + OTA transmission + demod.
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  /// SLO accounting over served requests (a tenant without a target
  /// counts every served request as within).
  std::size_t slo_within = 0;
  std::size_t slo_violations = 0;
  /// SLO-compliant requests per second of virtual time.
  double goodput_slo_rps = 0.0;
  /// Link-budget energy estimate summed over served requests.
  double energy_total_j = 0.0;
  double energy_per_inference_j = 0.0;
  /// One entry per client, in client-index order.
  std::vector<TenantStats> tenants;
  /// Served predictions matching the request label, over requests that
  /// carried one.
  std::size_t labeled = 0;
  std::size_t correct = 0;
  /// Online health totals across all tenants (see TenantStats).
  std::size_t alerts = 0;
  std::size_t drift_alerts = 0;
  double margin_p50 = 0.0;

  std::size_t rejected() const {
    return rejected_unknown_client + rejected_bad_input + rejected_queue_full;
  }
};

}  // namespace metaai::serve
