#include "serve/request.h"

#include "common/check.h"

namespace metaai::serve {

std::string_view RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kUnknownClient:
      return "unknown_client";
    case RejectReason::kBadInput:
      return "bad_input";
    case RejectReason::kQueueFull:
      return "queue_full";
  }
  throw CheckError("unknown reject reason");
}

}  // namespace metaai::serve
