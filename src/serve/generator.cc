#include "serve/generator.h"

#include <algorithm>
#include <string>

#include "common/parallel.h"

namespace metaai::serve {

Result<std::vector<ServeRequest>> GenerateWorkload(
    std::span<const ClientWorkload> clients, double duration_s, Rng& rng) {
  if (clients.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "workload needs at least one client"};
  }
  if (!(duration_s > 0.0)) {
    return Error{ErrorCode::kInvalidArgument,
                 "workload duration must be positive"};
  }
  for (std::size_t c = 0; c < clients.size(); ++c) {
    if (!(clients[c].arrival_rate_hz > 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "client " + std::to_string(c) +
                       ": arrival rate must be positive"};
    }
    if (clients[c].samples == nullptr || clients[c].samples->size() == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "client " + std::to_string(c) +
                       ": sample dataset must be non-empty"};
    }
  }

  std::vector<Rng> rngs = par::ForkRngs(rng, clients.size());
  std::vector<ServeRequest> requests;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const nn::RealDataset& samples = *clients[c].samples;
    double clock_s = 0.0;
    while (true) {
      clock_s += rngs[c].Exponential(clients[c].arrival_rate_hz);
      if (clock_s >= duration_s) break;
      const std::size_t pick = rngs[c].UniformInt(
          static_cast<std::uint64_t>(samples.size()));
      requests.push_back({.client = c,
                          .arrival_s = clock_s,
                          .pixels = samples.features[pick],
                          .label = samples.labels[pick]});
    }
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_s != b.arrival_s
                                ? a.arrival_s < b.arrival_s
                                : a.client < b.client;
                   });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<std::uint64_t>(i);
  }
  return requests;
}

}  // namespace metaai::serve
