#include "serve/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/parallel.h"

namespace metaai::serve {
namespace {

Result<void> ValidateSpec(const WorkloadSpec& spec) {
  if (spec.tenants.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "workload needs at least one client"};
  }
  if (!(spec.duration_s > 0.0)) {
    return Error{ErrorCode::kInvalidArgument,
                 "workload duration must be positive"};
  }
  for (std::size_t c = 0; c < spec.tenants.size(); ++c) {
    const TenantWorkload& tenant = spec.tenants[c];
    const std::string prefix = "client " + std::to_string(c) + ": ";
    if (!(tenant.arrival_rate_hz > 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "arrival rate must be positive"};
    }
    if (tenant.samples == nullptr || tenant.samples->size() == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "sample dataset must be non-empty"};
    }
    if (tenant.pareto_shape != 0.0 && !(tenant.pareto_shape > 1.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix +
                       "Pareto shape must be 0 (Poisson) or > 1 "
                       "(finite-mean heavy tail)"};
    }
    if (!(tenant.diurnal_amplitude >= 0.0) || tenant.diurnal_amplitude >= 1.0) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "diurnal amplitude must be in [0, 1)"};
    }
    if (tenant.diurnal_amplitude > 0.0 && !(tenant.diurnal_period_s > 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "diurnal period must be positive"};
    }
    for (const FlashCrowd& crowd : tenant.flash_crowds) {
      if (!(crowd.start_s >= 0.0) || !(crowd.duration_s > 0.0) ||
          !(crowd.multiplier > 0.0)) {
        return Error{ErrorCode::kInvalidArgument,
                     prefix +
                         "flash crowd needs start >= 0, duration > 0 and "
                         "multiplier > 0"};
      }
    }
  }
  return Ok();
}

}  // namespace

double RateMultiplier(const TenantWorkload& tenant, double t_s) {
  // Unmodulated tenants short-circuit to exactly 1.0, which keeps the
  // pure-Poisson time warp (dt / 1.0) a bitwise no-op.
  double multiplier = 1.0;
  if (tenant.diurnal_amplitude > 0.0) {
    multiplier *= 1.0 + tenant.diurnal_amplitude *
                            std::sin(2.0 * std::numbers::pi * t_s /
                                     tenant.diurnal_period_s);
  }
  for (const FlashCrowd& crowd : tenant.flash_crowds) {
    if (t_s >= crowd.start_s && t_s < crowd.start_s + crowd.duration_s) {
      multiplier *= crowd.multiplier;
    }
  }
  return multiplier;
}

Result<std::vector<ServeRequest>> GenerateWorkload(const WorkloadSpec& spec,
                                                   Rng& rng) {
  if (Result<void> ok = ValidateSpec(spec); !ok) return ok.error();

  std::vector<Rng> rngs = par::ForkRngs(rng, spec.tenants.size());
  std::vector<ServeRequest> requests;
  for (std::size_t c = 0; c < spec.tenants.size(); ++c) {
    const TenantWorkload& tenant = spec.tenants[c];
    const nn::RealDataset& samples = *tenant.samples;
    // Pareto scale mean-matched to the Poisson rate: with shape alpha
    // and scale x_m the mean inter-arrival is alpha*x_m/(alpha-1), so
    // x_m = (alpha-1)/(alpha*rate) keeps the long-run average rate.
    const double pareto_scale =
        tenant.pareto_shape > 1.0
            ? (tenant.pareto_shape - 1.0) /
                  (tenant.pareto_shape * tenant.arrival_rate_hz)
            : 0.0;
    double clock_s = 0.0;
    while (true) {
      double dt;
      if (tenant.pareto_shape > 1.0) {
        // Inverse-CDF Pareto: u in (0, 1], dt = x_m * u^(-1/alpha).
        const double u = 1.0 - rngs[c].Uniform();
        dt = pareto_scale * std::pow(u, -1.0 / tenant.pareto_shape);
      } else {
        dt = rngs[c].Exponential(tenant.arrival_rate_hz);
      }
      // Rate modulation by time warp: a multiplier m compresses the
      // base draw to dt/m without spending extra Rng draws, so the
      // unmodulated trace (m == 1.0) is bitwise the legacy one.
      clock_s += dt / RateMultiplier(tenant, clock_s);
      if (clock_s >= spec.duration_s) break;
      const std::size_t pick = rngs[c].UniformInt(
          static_cast<std::uint64_t>(samples.size()));
      requests.push_back({.client = c,
                          .arrival_s = clock_s,
                          .pixels = samples.features[pick],
                          .label = samples.labels[pick]});
    }
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     return a.arrival_s != b.arrival_s
                                ? a.arrival_s < b.arrival_s
                                : a.client < b.client;
                   });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<std::uint64_t>(i);
  }
  return requests;
}

Result<std::vector<ServeRequest>> GenerateWorkload(
    std::span<const ClientWorkload> clients, double duration_s, Rng& rng) {
  WorkloadSpec spec;
  spec.duration_s = duration_s;
  spec.tenants.reserve(clients.size());
  for (const ClientWorkload& client : clients) {
    spec.tenants.push_back({.arrival_rate_hz = client.arrival_rate_hz,
                            .samples = client.samples});
  }
  return GenerateWorkload(spec, rng);
}

}  // namespace metaai::serve
