// metaai::serve — deterministic batched multi-tenant OTA serving
// runtime (§6's "shared across multiple IoT devices", made operational).
//
// One shared surface stack serves N edge clients. Requests arrive on a
// virtual clock; admission control rejects malformed or over-quota
// demand with typed reasons; admitted requests wait in bounded
// per-client FIFO queues and are coalesced into TDMA frames built by
// core::SharedSurfaceScheduler::BuildFrame — one slot per client with
// pending work, carrying a batch of back-to-back inferences so the
// guard interval is paid once per slot instead of once per request.
// Slot allocation is fair round-robin (core::AllocateSlots), so a
// backlogged client cannot starve the others.
//
// Construction is graph-first: the runtime deploys every client over an
// mts::LayerGraph (use mts::LayerGraph::FromSurface for a bare panel —
// a depth-1 graph serves bit-for-bit like the single-surface pipeline).
// Operator misconfiguration (empty client list, non-positive queue or
// frame budgets) is a typed kInvalidArgument error through TryCreate;
// the plain constructor keeps the legacy CheckError-throwing behavior.
//
// Determinism contract: request i's sync-offset draw and channel noise
// come from the i-th pre-forked Rng stream (fork order = submission
// order), so every prediction is bitwise identical for any thread
// count, any frame-budget/batching composition, and with or without
// the solver-result cache. The span-of-streams Run overload lets a
// cluster front door (metaai::fleet) fork one stream per request of a
// *global* trace and route sub-traces to shards without perturbing any
// request's draws. Run and RunUnbatched produce byte-identical
// predictions; they differ only in virtual-time accounting and
// wall-clock cost.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/scheduler.h"
#include "mts/config_cache.h"
#include "mts/layer_graph.h"
#include "obs/alerts.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"
#include "serve/request.h"
#include "sim/energy_model.h"
#include "sim/sync.h"

namespace metaai::serve {

/// One tenant of the shared surface.
struct ClientSpec {
  std::string name;
  core::TrainedModel model;
  /// Per-client link (geometry/environment may differ per client).
  sim::OtaLinkConfig link;
  core::DeploymentOptions deployment;
  /// End-to-end (arrival -> readout) latency target for SLO
  /// accounting; 0 = no target (every served request counts as
  /// within).
  double slo_latency_s = 0.0;
};

struct RuntimeOptions {
  core::SchedulerConfig scheduler;
  /// Bounded per-client queue depth; admission rejects with
  /// RejectReason::kQueueFull beyond this (backpressure).
  std::size_t queue_capacity = 64;
  /// Maximum inferences coalesced into one TDMA frame, shared fairly
  /// across clients by core::AllocateSlots.
  std::size_t frame_budget = 8;
  /// Optional shared solver-result cache consulted when mapping each
  /// client's weights at construction. Shared ownership: fleet shards
  /// (and any other runtimes) may hold the same cache and it outlives
  /// every holder — the raw-pointer lifetime footgun of the PR 5 API
  /// is gone. Tenants deploying identical models hit instead of
  /// re-running coordinate descent. Null = always solve fresh.
  std::shared_ptr<mts::ConfigCache> cache;
  /// Incremental solving across near-duplicate tenants: when positive
  /// (and `cache` is set), an exact cache miss warm-starts the solve
  /// from the nearest cached schedule within this RMS weight-feature
  /// distance (core::MappingOptions::warm_start_distance). 0 = off,
  /// which preserves the bitwise cached-vs-uncached serving contract;
  /// warm-started mappings are equivalent within the solver's residual
  /// tolerance instead.
  double warm_start_distance = 0.0;
  /// Cost model behind the per-request energy estimates and the demod
  /// stage of the lifecycle traces (Tables 2-3 constants by default).
  sim::EnergyModelConfig energy;
  /// Online health monitoring: when true (default), every served
  /// request's soft-decision margin feeds a per-tenant AlertEngine, SLO
  /// violations feed its slo_violation signal, and emitted alerts land
  /// in ServeResult::alerts / TenantStats — all evaluated from the
  /// serial control loop, so the alert stream is byte-identical across
  /// thread counts.
  bool health = true;
  /// Rules installed in every tenant's engine;
  /// obs::health::DefaultLinkHealthRules() when empty.
  std::vector<obs::health::AlertRule> health_rules;
};

struct ServeResult {
  /// One response per request, in submission order.
  std::vector<ServeResponse> responses;
  ServeStats stats;
  /// One lifecycle trace per *served* request, in submission order,
  /// with the tenant names the trace indices refer to. Byte-identical
  /// across thread counts (see obs/lifecycle.h).
  obs::RequestLog request_log;
  /// One "metaai.timeseries.v1" tick per dispatched TDMA frame (queue
  /// depth, in-flight, frame utilization, cache hit rate, cumulative
  /// admission counters), appended by the serial control loop.
  std::vector<obs::TimeSeriesPoint> timeseries;
  /// Typed alert stream from the per-tenant health engines, in emission
  /// order (exports as "metaai.alerts.v1"). Empty when
  /// RuntimeOptions::health is off, and for fault-free traces under the
  /// default rules.
  std::vector<obs::health::Alert> alerts;
};

class Runtime {
 public:
  /// Builds one deployment per client over the surface cascade
  /// described by `graph` (through `options.cache` when set). The
  /// runtime owns the graph — the deployments' links borrow it, and a
  /// long-lived server must not dangle if the caller's copy goes out of
  /// scope. A depth-1 graph (mts::LayerGraph::FromSurface) serves
  /// bit-for-bit like the pre-cascade single-surface pipeline. Throws
  /// CheckError on empty client lists or non-positive queue/budget
  /// options — use TryCreate for the typed-error form.
  Runtime(mts::LayerGraph graph, std::vector<ClientSpec> clients,
          RuntimeOptions options = {});

  /// Deprecated single-surface shim (one PR): wraps the panel with
  /// mts::LayerGraph::FromSurface and delegates to the graph entry
  /// point, bit for bit.
  [[deprecated(
      "construct from mts::LayerGraph::FromSurface(surface) instead")]]
  Runtime(const mts::Metasurface& surface, std::vector<ClientSpec> clients,
          RuntimeOptions options = {});

  /// Typed-error construction: rejects empty client lists, non-positive
  /// queue/budget options, negative SLO targets and negative warm-start
  /// distances with ErrorCode::kInvalidArgument instead of throwing.
  /// The CLI maps these to exit 2 like every other typed error.
  static Result<Runtime> TryCreate(mts::LayerGraph graph,
                                   std::vector<ClientSpec> clients,
                                   RuntimeOptions options = {});

  Runtime(Runtime&&) = default;
  Runtime& operator=(Runtime&&) = default;

  std::size_t num_clients() const { return input_dims_.size(); }
  const core::SharedSurfaceScheduler& scheduler() const {
    return *scheduler_;
  }
  const mts::LayerGraph& graph() const { return *graph_; }
  const RuntimeOptions& options() const { return options_; }

  /// Serves a request trace (non-decreasing arrival_s) on the virtual
  /// clock with frame batching. `rng` seeds the per-request streams
  /// (fork order = submission order).
  ServeResult Run(std::span<const ServeRequest> requests,
                  const sim::SyncModel& sync, Rng& rng) const;

  /// Same, with caller-owned per-request streams: request_rngs[i] is
  /// request i's stream (request_rngs.size() must equal
  /// requests.size()). This is the fleet routing hook — a front door
  /// forks one stream per request of the global trace, so a request's
  /// draws do not depend on which shard (or sub-trace composition)
  /// serves it.
  ServeResult Run(std::span<const ServeRequest> requests,
                  const sim::SyncModel& sync,
                  std::span<Rng> request_rngs) const;

  /// Naive baseline: no coalescing — each request is processed strictly
  /// in order in its own single-slot frame (guard interval per request)
  /// with serial execution. Predictions are byte-identical to Run; only
  /// the virtual-time accounting and wall-clock cost differ.
  ServeResult RunUnbatched(std::span<const ServeRequest> requests,
                           const sim::SyncModel& sync, Rng& rng) const;
  ServeResult RunUnbatched(std::span<const ServeRequest> requests,
                           const sim::SyncModel& sync,
                           std::span<Rng> request_rngs) const;

 private:
  /// Shared constructor body (runs after graph_ is set).
  void Init(std::vector<ClientSpec> clients);

  /// Owned, heap-allocated so the address is stable under moves; the
  /// deployments' links hold pointers into it. Declared before
  /// scheduler_.
  std::unique_ptr<const mts::LayerGraph> graph_;
  std::vector<std::size_t> input_dims_;
  /// Per-client latency targets (0 = no SLO), indexed like clients.
  std::vector<double> slo_targets_;
  std::unique_ptr<core::SharedSurfaceScheduler> scheduler_;
  /// Per-client mapping provenance: true when the client's
  /// configuration came from options_.cache instead of a fresh solve.
  std::vector<bool> mapping_from_cache_;
  RuntimeOptions options_;
  sim::EnergyModel energy_;
};

}  // namespace metaai::serve
