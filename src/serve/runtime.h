// metaai::serve — deterministic batched multi-tenant OTA serving
// runtime (§6's "shared across multiple IoT devices", made operational).
//
// One shared metasurface serves N edge clients. Requests arrive on a
// virtual clock; admission control rejects malformed or over-quota
// demand with typed reasons; admitted requests wait in bounded
// per-client FIFO queues and are coalesced into TDMA frames built by
// core::SharedSurfaceScheduler::BuildFrame — one slot per client with
// pending work, carrying a batch of back-to-back inferences so the
// guard interval is paid once per slot instead of once per request.
// Slot allocation is fair round-robin (core::AllocateSlots), so a
// backlogged client cannot starve the others.
//
// Determinism contract: request i's sync-offset draw and channel noise
// come from the i-th pre-forked Rng stream (fork order = submission
// order), so every prediction is bitwise identical for any thread
// count, any frame-budget/batching composition, and with or without
// the solver-result cache. Run and RunUnbatched produce byte-identical
// predictions; they differ only in virtual-time accounting and
// wall-clock cost.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "mts/config_cache.h"
#include "obs/alerts.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"
#include "serve/request.h"
#include "sim/energy_model.h"
#include "sim/sync.h"

namespace metaai::serve {

/// One tenant of the shared surface.
struct ClientSpec {
  std::string name;
  core::TrainedModel model;
  /// Per-client link (geometry/environment may differ per client).
  sim::OtaLinkConfig link;
  core::DeploymentOptions deployment;
  /// End-to-end (arrival -> readout) latency target for SLO
  /// accounting; 0 = no target (every served request counts as
  /// within).
  double slo_latency_s = 0.0;
};

struct RuntimeOptions {
  core::SchedulerConfig scheduler;
  /// Bounded per-client queue depth; admission rejects with
  /// RejectReason::kQueueFull beyond this (backpressure).
  std::size_t queue_capacity = 64;
  /// Maximum inferences coalesced into one TDMA frame, shared fairly
  /// across clients by core::AllocateSlots.
  std::size_t frame_budget = 8;
  /// Optional shared solver-result cache consulted when mapping each
  /// client's weights at construction (not owned; must outlive the
  /// runtime). Tenants deploying identical models hit instead of
  /// re-running coordinate descent. Null = always solve fresh.
  mts::ConfigCache* cache = nullptr;
  /// Incremental solving across near-duplicate tenants: when positive
  /// (and `cache` is set), an exact cache miss warm-starts the solve
  /// from the nearest cached schedule within this RMS weight-feature
  /// distance (core::MappingOptions::warm_start_distance). 0 = off,
  /// which preserves the bitwise cached-vs-uncached serving contract;
  /// warm-started mappings are equivalent within the solver's residual
  /// tolerance instead.
  double warm_start_distance = 0.0;
  /// Cost model behind the per-request energy estimates and the demod
  /// stage of the lifecycle traces (Tables 2-3 constants by default).
  sim::EnergyModelConfig energy;
  /// Online health monitoring: when true (default), every served
  /// request's soft-decision margin feeds a per-tenant AlertEngine, SLO
  /// violations feed its slo_violation signal, and emitted alerts land
  /// in ServeResult::alerts / TenantStats — all evaluated from the
  /// serial control loop, so the alert stream is byte-identical across
  /// thread counts.
  bool health = true;
  /// Rules installed in every tenant's engine;
  /// obs::health::DefaultLinkHealthRules() when empty.
  std::vector<obs::health::AlertRule> health_rules;
};

struct ServeResult {
  /// One response per request, in submission order.
  std::vector<ServeResponse> responses;
  ServeStats stats;
  /// One lifecycle trace per *served* request, in submission order,
  /// with the tenant names the trace indices refer to. Byte-identical
  /// across thread counts (see obs/lifecycle.h).
  obs::RequestLog request_log;
  /// One "metaai.timeseries.v1" tick per dispatched TDMA frame (queue
  /// depth, in-flight, frame utilization, cache hit rate, cumulative
  /// admission counters), appended by the serial control loop.
  std::vector<obs::TimeSeriesPoint> timeseries;
  /// Typed alert stream from the per-tenant health engines, in emission
  /// order (exports as "metaai.alerts.v1"). Empty when
  /// RuntimeOptions::health is off, and for fault-free traces under the
  /// default rules.
  std::vector<obs::health::Alert> alerts;
};

class Runtime {
 public:
  /// Builds one deployment per client on the shared `surface` (through
  /// `options.cache` when set). The runtime keeps its own copy of the
  /// surface — the deployments' links borrow the metasurface, and a
  /// long-lived server must not dangle if the caller's panel goes out
  /// of scope (temporaries are fine). Throws CheckError on empty client
  /// lists or non-positive queue/budget options — runtime configuration
  /// is operator input, not tenant input.
  Runtime(const mts::Metasurface& surface, std::vector<ClientSpec> clients,
          RuntimeOptions options = {});

  /// Multi-surface serving: every client deploys over the cascade
  /// described by `graph`. The runtime keeps its own copy of the graph
  /// (same dangling-safety contract as the surface overload). A depth-1
  /// graph serves bit-for-bit like the single-surface constructor.
  Runtime(const mts::LayerGraph& graph, std::vector<ClientSpec> clients,
          RuntimeOptions options = {});

  std::size_t num_clients() const { return input_dims_.size(); }
  const core::SharedSurfaceScheduler& scheduler() const {
    return *scheduler_;
  }
  const RuntimeOptions& options() const { return options_; }

  /// Serves a request trace (non-decreasing arrival_s) on the virtual
  /// clock with frame batching. `rng` seeds the per-request streams.
  ServeResult Run(std::span<const ServeRequest> requests,
                  const sim::SyncModel& sync, Rng& rng) const;

  /// Naive baseline: no coalescing — each request is processed strictly
  /// in order in its own single-slot frame (guard interval per request)
  /// with serial execution. Predictions are byte-identical to Run; only
  /// the virtual-time accounting and wall-clock cost differ.
  ServeResult RunUnbatched(std::span<const ServeRequest> requests,
                           const sim::SyncModel& sync, Rng& rng) const;

 private:
  /// Shared constructor body (runs after surface_/graph_ are set).
  void Init(std::vector<ClientSpec> clients);

  /// Owned copy; declared before scheduler_ because the deployments'
  /// links hold references into it.
  mts::Metasurface surface_;
  /// Owned cascade copy for the graph constructor (deployments' links
  /// hold pointers into it); nullopt for single-surface runtimes.
  std::optional<mts::LayerGraph> graph_;
  std::vector<std::size_t> input_dims_;
  /// Per-client latency targets (0 = no SLO), indexed like clients.
  std::vector<double> slo_targets_;
  std::unique_ptr<core::SharedSurfaceScheduler> scheduler_;
  /// Per-client mapping provenance: true when the client's
  /// configuration came from options_.cache instead of a fresh solve.
  std::vector<bool> mapping_from_cache_;
  RuntimeOptions options_;
  sim::EnergyModel energy_;
};

}  // namespace metaai::serve
