// Classification metrics: accuracy from prediction lists and confusion
// matrices, used by every evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.h"

namespace metaai::nn {

/// Fraction of positions where predictions[i] == labels[i].
double Accuracy(std::span<const int> predictions, std::span<const int> labels);

/// Confusion matrix C where C(true_label, predicted) counts occurrences.
Matrix<std::size_t> ConfusionMatrix(std::span<const int> predictions,
                                    std::span<const int> labels,
                                    std::size_t num_classes);

/// Per-class recall (diagonal over row sums); rows with no samples get 0.
std::vector<double> PerClassRecall(const Matrix<std::size_t>& confusion);

}  // namespace metaai::nn
