// Compact convolutional network: the deep digital baseline.
//
// Table 1 and Appendix A.4 compare MetaAI against ResNet-18 running on a
// server. At this repository's 16x16 synthetic input scale a full
// ResNet-18 is pointless; this 2-conv + 2-FC network plays the same role —
// a nonlinear digital upper bound that clearly outperforms any linear
// model — at laptop cost. Implemented from scratch (forward + backprop) in
// float32 for speed.
//
// Architecture: conv3x3(c1) - ReLU - maxpool2 - conv3x3(c2) - ReLU -
// maxpool2 - fc(hidden) - ReLU - fc(classes) - softmax CE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/types.h"

namespace metaai::nn {

struct ConvNetConfig {
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t conv1_channels = 8;
  std::size_t conv2_channels = 16;
  std::size_t hidden = 64;
  std::size_t num_classes = 10;
};

struct ConvTrainOptions {
  int epochs = 25;
  int batch_size = 64;
  double learning_rate = 0.05;
  double momentum = 0.9;
};

class ConvNet {
 public:
  explicit ConvNet(ConvNetConfig config);

  const ConvNetConfig& config() const { return config_; }

  void Initialize(Rng& rng);

  /// Class logits for one flattened H*W image.
  std::vector<float> Logits(const std::vector<double>& image) const;

  int Predict(const std::vector<double>& image) const;

  /// SGD training; returns final-epoch mean loss.
  double Train(const RealDataset& train, const ConvTrainOptions& options,
               Rng& rng);

  double Evaluate(const RealDataset& test) const;

  /// Number of trainable parameters (for the energy/latency model).
  std::size_t ParameterCount() const;

  /// Multiply-accumulate operations for one forward pass (energy model).
  std::size_t ForwardMacs() const;

 private:
  struct Activations;  // defined in the .cc; caches per-layer outputs

  void Forward(const float* image, Activations& acts) const;

  ConvNetConfig config_;
  // Parameters, flat float storage.
  std::vector<float> conv1_w_, conv1_b_;
  std::vector<float> conv2_w_, conv2_b_;
  std::vector<float> fc1_w_, fc1_b_;
  std::vector<float> fc2_w_, fc2_b_;
};

}  // namespace metaai::nn
