// Dataset containers shared by the neural-network substrate and the
// dataset generators. Real-valued sets feed the digital CNN baseline;
// complex-valued sets (modulated symbol vectors) feed the complex LNN that
// MetaAI deploys over the air.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace metaai::nn {

using Complex = std::complex<double>;

/// Real-feature classification dataset (row-per-sample).
struct RealDataset {
  std::size_t num_classes = 0;
  std::size_t dim = 0;
  std::vector<std::vector<double>> features;
  std::vector<int> labels;

  std::size_t size() const { return features.size(); }

  void Validate() const {
    Check(num_classes > 0, "dataset needs classes");
    Check(features.size() == labels.size(), "feature/label count mismatch");
    for (const auto& f : features) {
      Check(f.size() == dim, "feature dimension mismatch");
    }
    for (const int label : labels) {
      Check(label >= 0 && static_cast<std::size_t>(label) < num_classes,
            "label out of range");
    }
  }
};

/// Complex-feature classification dataset (modulated symbol vectors).
struct ComplexDataset {
  std::size_t num_classes = 0;
  std::size_t dim = 0;
  std::vector<std::vector<Complex>> features;
  std::vector<int> labels;

  std::size_t size() const { return features.size(); }

  void Validate() const {
    Check(num_classes > 0, "dataset needs classes");
    Check(features.size() == labels.size(), "feature/label count mismatch");
    for (const auto& f : features) {
      Check(f.size() == dim, "feature dimension mismatch");
    }
    for (const int label : labels) {
      Check(label >= 0 && static_cast<std::size_t>(label) < num_classes,
            "label out of range");
    }
  }
};

}  // namespace metaai::nn
