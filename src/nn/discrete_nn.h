// DiscreteNN baseline (§5.1, Table 1).
//
// The paper compares MetaAI's continuous-train-then-quantize strategy
// against a network whose weights are constrained to the hardware's
// discrete domain from the start [Hubara et al., Binarized NNs]: each
// weight is a single 2-bit phase state e^{j k pi/2} times a per-output
// positive scale. Training uses the straight-through estimator: latent
// continuous weights carry the gradient, the forward pass sees their
// quantized projection. Table 1 shows this is consistently 10-20 points
// below MetaAI — the motivation for the continuous-to-discrete strategy.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "nn/complex_linear.h"
#include "nn/types.h"

namespace metaai::nn {

struct DiscreteTrainOptions {
  int epochs = 60;
  int batch_size = 64;
  double learning_rate = 8e-3;
  double momentum = 0.95;
};

class DiscreteNnModel {
 public:
  DiscreteNnModel(std::size_t input_dim, std::size_t num_classes);

  std::size_t input_dim() const { return latent_.cols(); }
  std::size_t num_classes() const { return latent_.rows(); }

  void Initialize(Rng& rng);

  /// The quantized weights used in the forward pass: phase snapped to the
  /// nearest of {0, pi/2, pi, 3pi/2}, magnitude fixed to the per-output
  /// scale.
  ComplexMatrix QuantizedWeights() const;

  /// Class scores |sum_i Wq(r,i) x_i| using the quantized weights.
  std::vector<double> ClassScores(const std::vector<Complex>& x) const;

  int Predict(const std::vector<Complex>& x) const;

  /// Straight-through-estimator training; returns final-epoch mean loss.
  double Train(const ComplexDataset& train, const DiscreteTrainOptions& options,
               Rng& rng);

  double Evaluate(const ComplexDataset& test) const;

 private:
  ComplexMatrix latent_;          // continuous latent weights (R x U)
  std::vector<double> row_scale_; // per-output quantized magnitude
};

/// Projects a complex weight to the nearest discrete phase state with the
/// given magnitude.
Complex QuantizePhase(Complex weight, double magnitude);

}  // namespace metaai::nn
