// Complex-valued single-fully-connected-layer network (§3.1).
//
// This is the exact network MetaAI trains digitally and then realizes over
// the air: a U x R complex weight matrix applied to the modulated symbol
// vector, with class scores taken as output magnitudes (Eqn 3's |.|) and a
// softmax cross-entropy loss on those magnitudes. Training is
// complex-valued backpropagation with SGD + momentum, using the paper's
// hyperparameters by default (lr 8e-3, momentum 0.95, batch 64, 60 epochs).
//
// Robustness training hooks implement §3.5: an input augmentation callback
// is applied to each sample before the forward pass, which is how the CDFA
// sync-error injector (cyclic shifts ~ Gamma) and the noise-aware training
// scheme (Eqn 14's x + N_d, plus output noise N_e) plug in.
#pragma once

#include <functional>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "nn/types.h"

namespace metaai::nn {

struct ComplexTrainOptions {
  int epochs = 60;
  int batch_size = 64;
  double learning_rate = 8e-3;
  double momentum = 0.95;
  /// Applied to a copy of each training sample before the forward pass
  /// (sync-error injection, noise injection). May be empty.
  std::function<void(std::vector<Complex>&, Rng&)> input_augment;
  /// Complex noise variance added to each pre-magnitude output during
  /// training (environmental noise N_e of Eqn 13). 0 disables.
  double output_noise_variance = 0.0;
};

class ComplexLinearModel {
 public:
  /// `input_dim` = U (symbols per sample), `num_classes` = R.
  ComplexLinearModel(std::size_t input_dim, std::size_t num_classes);

  std::size_t input_dim() const { return weights_.cols(); }
  std::size_t num_classes() const { return weights_.rows(); }

  /// Weight matrix W (R x U); row r holds the weight sequence H_r(t_i)
  /// that the metasurface must realize for output r.
  const ComplexMatrix& weights() const { return weights_; }
  ComplexMatrix& mutable_weights() { return weights_; }

  /// Random complex-Gaussian initialization scaled by 1/sqrt(U).
  void Initialize(Rng& rng);

  /// Pre-magnitude outputs z_r = sum_i W(r,i) x_i.
  std::vector<Complex> PreActivations(const std::vector<Complex>& x) const;

  /// Class scores y_r = |z_r| (Eqn 3).
  std::vector<double> ClassScores(const std::vector<Complex>& x) const;

  /// Argmax class.
  int Predict(const std::vector<Complex>& x) const;

  /// Trains with complex backprop; returns the final-epoch mean training
  /// loss. The model must be Initialize()d (or pre-seeded) first.
  double Train(const ComplexDataset& train, const ComplexTrainOptions& options,
               Rng& rng);

  /// Fraction of correctly classified samples.
  double Evaluate(const ComplexDataset& test) const;

 private:
  ComplexMatrix weights_;  // R x U
};

/// Softmax of magnitudes with max-subtraction for stability.
std::vector<double> SoftmaxScores(const std::vector<double>& scores);

}  // namespace metaai::nn
