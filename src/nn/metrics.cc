#include "nn/metrics.h"

#include "common/check.h"

namespace metaai::nn {

double Accuracy(std::span<const int> predictions,
                std::span<const int> labels) {
  Check(predictions.size() == labels.size(),
        "prediction/label count mismatch");
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    correct += (predictions[i] == labels[i]);
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

Matrix<std::size_t> ConfusionMatrix(std::span<const int> predictions,
                                    std::span<const int> labels,
                                    std::size_t num_classes) {
  Check(predictions.size() == labels.size(),
        "prediction/label count mismatch");
  Matrix<std::size_t> confusion(num_classes, num_classes, 0);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const auto truth = static_cast<std::size_t>(labels[i]);
    const auto pred = static_cast<std::size_t>(predictions[i]);
    CheckIndex(truth, num_classes, "label");
    CheckIndex(pred, num_classes, "prediction");
    ++confusion(truth, pred);
  }
  return confusion;
}

std::vector<double> PerClassRecall(const Matrix<std::size_t>& confusion) {
  Check(confusion.rows() == confusion.cols(),
        "confusion matrix must be square");
  std::vector<double> recall(confusion.rows(), 0.0);
  for (std::size_t r = 0; r < confusion.rows(); ++r) {
    std::size_t row_total = 0;
    for (std::size_t c = 0; c < confusion.cols(); ++c) {
      row_total += confusion(r, c);
    }
    if (row_total > 0) {
      recall[r] = static_cast<double>(confusion(r, r)) /
                  static_cast<double>(row_total);
    }
  }
  return recall;
}

}  // namespace metaai::nn
