#include "nn/conv_net.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/check.h"

namespace metaai::nn {
namespace {

// 3x3 same-padding correlation: out[oc] = sum_ic w[oc][ic] * in[ic] + b.
void ConvForward(const float* in, std::size_t in_ch, std::size_t h,
                 std::size_t w, const float* weights, const float* bias,
                 std::size_t out_ch, float* out) {
  const std::size_t plane = h * w;
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    float* out_plane = out + oc * plane;
    std::fill(out_plane, out_plane + plane, bias[oc]);
    for (std::size_t ic = 0; ic < in_ch; ++ic) {
      const float* in_plane = in + ic * plane;
      const float* kernel = weights + (oc * in_ch + ic) * 9;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          float acc = 0.0f;
          for (int ky = -1; ky <= 1; ++ky) {
            const auto yy = static_cast<std::ptrdiff_t>(y) + ky;
            if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const auto xx = static_cast<std::ptrdiff_t>(x) + kx;
              if (xx < 0 || xx >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += kernel[(ky + 1) * 3 + (kx + 1)] *
                     in_plane[static_cast<std::size_t>(yy) * w +
                              static_cast<std::size_t>(xx)];
            }
          }
          out_plane[y * w + x] += acc;
        }
      }
    }
  }
}

// Gradient of ConvForward w.r.t. weights, bias and input.
void ConvBackward(const float* in, std::size_t in_ch, std::size_t h,
                  std::size_t w, const float* weights, std::size_t out_ch,
                  const float* grad_out, float* grad_w, float* grad_b,
                  float* grad_in) {
  const std::size_t plane = h * w;
  if (grad_in != nullptr) {
    std::fill(grad_in, grad_in + in_ch * plane, 0.0f);
  }
  for (std::size_t oc = 0; oc < out_ch; ++oc) {
    const float* go_plane = grad_out + oc * plane;
    for (std::size_t i = 0; i < plane; ++i) grad_b[oc] += go_plane[i];
    for (std::size_t ic = 0; ic < in_ch; ++ic) {
      const float* in_plane = in + ic * plane;
      const float* kernel = weights + (oc * in_ch + ic) * 9;
      float* gw = grad_w + (oc * in_ch + ic) * 9;
      float* gi_plane = grad_in != nullptr ? grad_in + ic * plane : nullptr;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          const float go = go_plane[y * w + x];
          if (go == 0.0f) continue;
          for (int ky = -1; ky <= 1; ++ky) {
            const auto yy = static_cast<std::ptrdiff_t>(y) + ky;
            if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const auto xx = static_cast<std::ptrdiff_t>(x) + kx;
              if (xx < 0 || xx >= static_cast<std::ptrdiff_t>(w)) continue;
              const std::size_t in_idx =
                  static_cast<std::size_t>(yy) * w +
                  static_cast<std::size_t>(xx);
              const std::size_t k_idx =
                  static_cast<std::size_t>((ky + 1) * 3 + (kx + 1));
              gw[k_idx] += go * in_plane[in_idx];
              if (gi_plane != nullptr) {
                gi_plane[in_idx] += go * kernel[k_idx];
              }
            }
          }
        }
      }
    }
  }
}

void ReluForward(float* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) data[i] = std::max(data[i], 0.0f);
}

void ReluBackward(const float* activated, float* grad, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (activated[i] <= 0.0f) grad[i] = 0.0f;
  }
}

// 2x2 max pool; records the argmax index for the backward pass.
void PoolForward(const float* in, std::size_t ch, std::size_t h,
                 std::size_t w, float* out, std::uint32_t* argmax) {
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  for (std::size_t c = 0; c < ch; ++c) {
    const float* in_plane = in + c * h * w;
    float* out_plane = out + c * oh * ow;
    std::uint32_t* arg_plane = argmax + c * oh * ow;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        std::size_t best_idx = (2 * y) * w + 2 * x;
        float best = in_plane[best_idx];
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t idx =
                (2 * y + static_cast<std::size_t>(dy)) * w + 2 * x +
                static_cast<std::size_t>(dx);
            if (in_plane[idx] > best) {
              best = in_plane[idx];
              best_idx = idx;
            }
          }
        }
        out_plane[y * ow + x] = best;
        arg_plane[y * ow + x] = static_cast<std::uint32_t>(best_idx);
      }
    }
  }
}

void PoolBackward(const float* grad_out, const std::uint32_t* argmax,
                  std::size_t ch, std::size_t h, std::size_t w,
                  float* grad_in) {
  const std::size_t oh = h / 2;
  const std::size_t ow = w / 2;
  std::fill(grad_in, grad_in + ch * h * w, 0.0f);
  for (std::size_t c = 0; c < ch; ++c) {
    const float* go_plane = grad_out + c * oh * ow;
    const std::uint32_t* arg_plane = argmax + c * oh * ow;
    float* gi_plane = grad_in + c * h * w;
    for (std::size_t i = 0; i < oh * ow; ++i) {
      gi_plane[arg_plane[i]] += go_plane[i];
    }
  }
}

void FcForward(const float* in, std::size_t in_dim, const float* weights,
               const float* bias, std::size_t out_dim, float* out) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    const float* row = weights + o * in_dim;
    float acc = bias[o];
    for (std::size_t i = 0; i < in_dim; ++i) acc += row[i] * in[i];
    out[o] = acc;
  }
}

void FcBackward(const float* in, std::size_t in_dim, const float* weights,
                std::size_t out_dim, const float* grad_out, float* grad_w,
                float* grad_b, float* grad_in) {
  if (grad_in != nullptr) std::fill(grad_in, grad_in + in_dim, 0.0f);
  for (std::size_t o = 0; o < out_dim; ++o) {
    const float go = grad_out[o];
    grad_b[o] += go;
    const float* row = weights + o * in_dim;
    float* gw_row = grad_w + o * in_dim;
    for (std::size_t i = 0; i < in_dim; ++i) {
      gw_row[i] += go * in[i];
      if (grad_in != nullptr) grad_in[i] += go * row[i];
    }
  }
}

void HeInit(std::vector<float>& weights, std::size_t fan_in, Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& w : weights) {
    w = static_cast<float>(rng.Normal(0.0, std));
  }
}

}  // namespace

struct ConvNet::Activations {
  std::vector<float> input;
  std::vector<float> conv1, pool1, conv2, pool2, fc1, logits;
  std::vector<std::uint32_t> arg1, arg2;
};

ConvNet::ConvNet(ConvNetConfig config) : config_(config) {
  Check(config_.height % 4 == 0 && config_.width % 4 == 0,
        "input dimensions must be divisible by 4 (two 2x2 pools)");
  Check(config_.num_classes > 0, "need at least one class");
  Check(config_.conv1_channels > 0 && config_.conv2_channels > 0 &&
            config_.hidden > 0,
        "layer sizes must be positive");
  conv1_w_.resize(config_.conv1_channels * 1 * 9);
  conv1_b_.resize(config_.conv1_channels);
  conv2_w_.resize(config_.conv2_channels * config_.conv1_channels * 9);
  conv2_b_.resize(config_.conv2_channels);
  const std::size_t flat =
      config_.conv2_channels * (config_.height / 4) * (config_.width / 4);
  fc1_w_.resize(config_.hidden * flat);
  fc1_b_.resize(config_.hidden);
  fc2_w_.resize(config_.num_classes * config_.hidden);
  fc2_b_.resize(config_.num_classes);
}

void ConvNet::Initialize(Rng& rng) {
  HeInit(conv1_w_, 9, rng);
  HeInit(conv2_w_, 9 * config_.conv1_channels, rng);
  const std::size_t flat =
      config_.conv2_channels * (config_.height / 4) * (config_.width / 4);
  HeInit(fc1_w_, flat, rng);
  HeInit(fc2_w_, config_.hidden, rng);
  std::fill(conv1_b_.begin(), conv1_b_.end(), 0.0f);
  std::fill(conv2_b_.begin(), conv2_b_.end(), 0.0f);
  std::fill(fc1_b_.begin(), fc1_b_.end(), 0.0f);
  std::fill(fc2_b_.begin(), fc2_b_.end(), 0.0f);
}

void ConvNet::Forward(const float* image, Activations& acts) const {
  const std::size_t h = config_.height;
  const std::size_t w = config_.width;
  const std::size_t c1 = config_.conv1_channels;
  const std::size_t c2 = config_.conv2_channels;
  acts.conv1.resize(c1 * h * w);
  acts.pool1.resize(c1 * (h / 2) * (w / 2));
  acts.arg1.resize(acts.pool1.size());
  acts.conv2.resize(c2 * (h / 2) * (w / 2));
  acts.pool2.resize(c2 * (h / 4) * (w / 4));
  acts.arg2.resize(acts.pool2.size());
  acts.fc1.resize(config_.hidden);
  acts.logits.resize(config_.num_classes);

  ConvForward(image, 1, h, w, conv1_w_.data(), conv1_b_.data(), c1,
              acts.conv1.data());
  ReluForward(acts.conv1.data(), acts.conv1.size());
  PoolForward(acts.conv1.data(), c1, h, w, acts.pool1.data(),
              acts.arg1.data());
  ConvForward(acts.pool1.data(), c1, h / 2, w / 2, conv2_w_.data(),
              conv2_b_.data(), c2, acts.conv2.data());
  ReluForward(acts.conv2.data(), acts.conv2.size());
  PoolForward(acts.conv2.data(), c2, h / 2, w / 2, acts.pool2.data(),
              acts.arg2.data());
  FcForward(acts.pool2.data(), acts.pool2.size(), fc1_w_.data(),
            fc1_b_.data(), config_.hidden, acts.fc1.data());
  ReluForward(acts.fc1.data(), acts.fc1.size());
  FcForward(acts.fc1.data(), config_.hidden, fc2_w_.data(), fc2_b_.data(),
            config_.num_classes, acts.logits.data());
}

std::vector<float> ConvNet::Logits(const std::vector<double>& image) const {
  Check(image.size() == config_.height * config_.width,
        "image dimension mismatch");
  std::vector<float> input(image.begin(), image.end());
  Activations acts;
  Forward(input.data(), acts);
  return acts.logits;
}

int ConvNet::Predict(const std::vector<double>& image) const {
  const auto logits = Logits(image);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

double ConvNet::Train(const RealDataset& train, const ConvTrainOptions& options,
                      Rng& rng) {
  train.Validate();
  Check(train.dim == config_.height * config_.width,
        "dataset dimension mismatch");
  Check(train.num_classes == config_.num_classes,
        "dataset class count mismatch");
  Check(options.epochs > 0 && options.batch_size > 0,
        "invalid training options");

  const std::size_t n = train.size();
  Check(n > 0, "empty training set");

  // Pre-convert features to float once.
  std::vector<std::vector<float>> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs[i].assign(train.features[i].begin(), train.features[i].end());
  }

  // Gradient and momentum buffers mirror the parameter layout.
  auto zeros_like = [](const std::vector<float>& v) {
    return std::vector<float>(v.size(), 0.0f);
  };
  auto g_c1w = zeros_like(conv1_w_), g_c1b = zeros_like(conv1_b_);
  auto g_c2w = zeros_like(conv2_w_), g_c2b = zeros_like(conv2_b_);
  auto g_f1w = zeros_like(fc1_w_), g_f1b = zeros_like(fc1_b_);
  auto g_f2w = zeros_like(fc2_w_), g_f2b = zeros_like(fc2_b_);
  auto v_c1w = zeros_like(conv1_w_), v_c1b = zeros_like(conv1_b_);
  auto v_c2w = zeros_like(conv2_w_), v_c2b = zeros_like(conv2_b_);
  auto v_f1w = zeros_like(fc1_w_), v_f1b = zeros_like(fc1_b_);
  auto v_f2w = zeros_like(fc2_w_), v_f2b = zeros_like(fc2_b_);

  Activations acts;
  std::vector<float> d_logits(config_.num_classes);
  std::vector<float> d_fc1(config_.hidden);
  std::vector<float> d_pool2;
  std::vector<float> d_conv2;
  std::vector<float> d_pool1;
  std::vector<float> d_conv1;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t h = config_.height;
  const std::size_t w = config_.width;
  double final_epoch_loss = 0.0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(options.batch_size));
      auto clear = [](std::vector<float>& v) {
        std::fill(v.begin(), v.end(), 0.0f);
      };
      clear(g_c1w);
      clear(g_c1b);
      clear(g_c2w);
      clear(g_c2b);
      clear(g_f1w);
      clear(g_f1b);
      clear(g_f2w);
      clear(g_f2b);

      for (std::size_t b = start; b < end; ++b) {
        const std::size_t idx = order[b];
        Forward(inputs[idx].data(), acts);

        // Softmax cross-entropy on logits.
        const float max_logit =
            *std::max_element(acts.logits.begin(), acts.logits.end());
        float total = 0.0f;
        for (std::size_t r = 0; r < d_logits.size(); ++r) {
          d_logits[r] = std::exp(acts.logits[r] - max_logit);
          total += d_logits[r];
        }
        const int label = train.labels[idx];
        for (std::size_t r = 0; r < d_logits.size(); ++r) {
          d_logits[r] /= total;
        }
        epoch_loss += -std::log(
            std::max(d_logits[static_cast<std::size_t>(label)], 1e-12f));
        d_logits[static_cast<std::size_t>(label)] -= 1.0f;

        // Backward chain.
        FcBackward(acts.fc1.data(), config_.hidden, fc2_w_.data(),
                   config_.num_classes, d_logits.data(), g_f2w.data(),
                   g_f2b.data(), d_fc1.data());
        ReluBackward(acts.fc1.data(), d_fc1.data(), d_fc1.size());
        d_pool2.resize(acts.pool2.size());
        FcBackward(acts.pool2.data(), acts.pool2.size(), fc1_w_.data(),
                   config_.hidden, d_fc1.data(), g_f1w.data(), g_f1b.data(),
                   d_pool2.data());
        d_conv2.resize(acts.conv2.size());
        PoolBackward(d_pool2.data(), acts.arg2.data(),
                     config_.conv2_channels, h / 2, w / 2, d_conv2.data());
        ReluBackward(acts.conv2.data(), d_conv2.data(), d_conv2.size());
        d_pool1.resize(acts.pool1.size());
        ConvBackward(acts.pool1.data(), config_.conv1_channels, h / 2, w / 2,
                     conv2_w_.data(), config_.conv2_channels, d_conv2.data(),
                     g_c2w.data(), g_c2b.data(), d_pool1.data());
        d_conv1.resize(acts.conv1.size());
        PoolBackward(d_pool1.data(), acts.arg1.data(),
                     config_.conv1_channels, h, w, d_conv1.data());
        ReluBackward(acts.conv1.data(), d_conv1.data(), d_conv1.size());
        ConvBackward(inputs[idx].data(), 1, h, w, conv1_w_.data(),
                     config_.conv1_channels, d_conv1.data(), g_c1w.data(),
                     g_c1b.data(), /*grad_in=*/nullptr);
      }

      const auto batch = static_cast<float>(end - start);
      const auto lr = static_cast<float>(options.learning_rate);
      const auto mu = static_cast<float>(options.momentum);
      auto apply = [&](std::vector<float>& param, std::vector<float>& grad,
                       std::vector<float>& vel) {
        for (std::size_t i = 0; i < param.size(); ++i) {
          vel[i] = mu * vel[i] - lr * grad[i] / batch;
          param[i] += vel[i];
        }
      };
      apply(conv1_w_, g_c1w, v_c1w);
      apply(conv1_b_, g_c1b, v_c1b);
      apply(conv2_w_, g_c2w, v_c2w);
      apply(conv2_b_, g_c2b, v_c2b);
      apply(fc1_w_, g_f1w, v_f1w);
      apply(fc1_b_, g_f1b, v_f1b);
      apply(fc2_w_, g_f2w, v_f2w);
      apply(fc2_b_, g_f2b, v_f2b);
    }
    final_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  return final_epoch_loss;
}

double ConvNet::Evaluate(const RealDataset& test) const {
  test.Validate();
  Check(test.dim == config_.height * config_.width,
        "dataset dimension mismatch");
  if (test.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += (Predict(test.features[i]) == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

std::size_t ConvNet::ParameterCount() const {
  return conv1_w_.size() + conv1_b_.size() + conv2_w_.size() +
         conv2_b_.size() + fc1_w_.size() + fc1_b_.size() + fc2_w_.size() +
         fc2_b_.size();
}

std::size_t ConvNet::ForwardMacs() const {
  const std::size_t h = config_.height;
  const std::size_t w = config_.width;
  const std::size_t conv1 = config_.conv1_channels * h * w * 9;
  const std::size_t conv2 = config_.conv2_channels * (h / 2) * (w / 2) * 9 *
                            config_.conv1_channels;
  const std::size_t flat =
      config_.conv2_channels * (h / 4) * (w / 4);
  const std::size_t fc = config_.hidden * flat +
                         config_.num_classes * config_.hidden;
  return conv1 + conv2 + fc;
}

}  // namespace metaai::nn
