#include "nn/discrete_nn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "mts/meta_atom.h"

namespace metaai::nn {

Complex QuantizePhase(Complex weight, double magnitude) {
  if (std::abs(weight) < 1e-15) return {magnitude, 0.0};
  const auto code = mts::NearestCode(std::arg(weight));
  return magnitude * mts::PhasorForCode(code);
}

DiscreteNnModel::DiscreteNnModel(std::size_t input_dim,
                                 std::size_t num_classes)
    : latent_(num_classes, input_dim), row_scale_(num_classes, 0.0) {
  Check(input_dim > 0 && num_classes > 0, "model needs dimensions");
}

void DiscreteNnModel::Initialize(Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim()));
  for (std::size_t r = 0; r < latent_.rows(); ++r) {
    row_scale_[r] = scale;
    for (std::size_t c = 0; c < latent_.cols(); ++c) {
      latent_(r, c) = rng.ComplexNormal(scale * scale);
    }
  }
}

ComplexMatrix DiscreteNnModel::QuantizedWeights() const {
  ComplexMatrix quantized(latent_.rows(), latent_.cols());
  for (std::size_t r = 0; r < latent_.rows(); ++r) {
    for (std::size_t c = 0; c < latent_.cols(); ++c) {
      quantized(r, c) = QuantizePhase(latent_(r, c), row_scale_[r]);
    }
  }
  return quantized;
}

std::vector<double> DiscreteNnModel::ClassScores(
    const std::vector<Complex>& x) const {
  Check(x.size() == input_dim(), "input dimension mismatch");
  std::vector<double> scores(num_classes());
  for (std::size_t r = 0; r < num_classes(); ++r) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < x.size(); ++i) {
      acc += QuantizePhase(latent_(r, i), row_scale_[r]) * x[i];
    }
    scores[r] = std::abs(acc);
  }
  return scores;
}

int DiscreteNnModel::Predict(const std::vector<Complex>& x) const {
  const auto scores = ClassScores(x);
  return static_cast<int>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

double DiscreteNnModel::Train(const ComplexDataset& train,
                              const DiscreteTrainOptions& options, Rng& rng) {
  train.Validate();
  Check(train.dim == input_dim(), "dataset dimension mismatch");
  Check(train.num_classes == num_classes(), "dataset class count mismatch");
  Check(options.epochs > 0 && options.batch_size > 0,
        "invalid training options");

  const std::size_t n = train.size();
  Check(n > 0, "empty training set");
  const std::size_t R = num_classes();
  const std::size_t U = input_dim();

  ComplexMatrix velocity(R, U);
  ComplexMatrix gradient(R, U);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  double final_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(options.batch_size));
      gradient.Fill(Complex{0.0, 0.0});
      // Quantize once per batch: the latent weights only change at the
      // batch boundary, so the projection is constant within it.
      const ComplexMatrix quantized = QuantizedWeights();
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t idx = order[b];
        const auto& x = train.features[idx];
        // Forward with quantized weights (straight-through estimator).
        std::vector<Complex> z(R, Complex{0.0, 0.0});
        for (std::size_t r = 0; r < R; ++r) {
          const Complex* row = quantized.row(r);
          Complex acc{0.0, 0.0};
          for (std::size_t i = 0; i < U; ++i) {
            acc += row[i] * x[i];
          }
          z[r] = acc;
        }
        std::vector<double> mags(R);
        for (std::size_t r = 0; r < R; ++r) mags[r] = std::abs(z[r]);
        const auto probs = SoftmaxScores(mags);
        const int label = train.labels[idx];
        epoch_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)],
                                         1e-12));
        // Backward as if the quantizer were identity.
        for (std::size_t r = 0; r < R; ++r) {
          double g = probs[r];
          if (static_cast<int>(r) == label) g -= 1.0;
          if (mags[r] < 1e-12) continue;
          const Complex scaled = g * (z[r] / mags[r]);
          Complex* grad_row = gradient.row(r);
          for (std::size_t i = 0; i < U; ++i) {
            grad_row[i] += scaled * std::conj(x[i]);
          }
        }
      }
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t r = 0; r < R; ++r) {
        Complex* v_row = velocity.row(r);
        Complex* g_row = gradient.row(r);
        Complex* w_row = latent_.row(r);
        for (std::size_t i = 0; i < U; ++i) {
          v_row[i] = options.momentum * v_row[i] -
                     options.learning_rate * g_row[i] * inv_batch;
          w_row[i] += v_row[i];
        }
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  return final_epoch_loss;
}

double DiscreteNnModel::Evaluate(const ComplexDataset& test) const {
  test.Validate();
  Check(test.dim == input_dim(), "dataset dimension mismatch");
  if (test.size() == 0) return 0.0;
  const ComplexMatrix quantized = QuantizedWeights();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& x = test.features[i];
    int best = 0;
    double best_mag = -1.0;
    for (std::size_t r = 0; r < num_classes(); ++r) {
      const Complex* row = quantized.row(r);
      Complex acc{0.0, 0.0};
      for (std::size_t u = 0; u < x.size(); ++u) acc += row[u] * x[u];
      const double mag = std::abs(acc);
      if (mag > best_mag) {
        best_mag = mag;
        best = static_cast<int>(r);
      }
    }
    correct += (best == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace metaai::nn
