#include "nn/complex_linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "obs/obs.h"
#include "simd/kernels.h"

namespace metaai::nn {

ComplexLinearModel::ComplexLinearModel(std::size_t input_dim,
                                       std::size_t num_classes)
    : weights_(num_classes, input_dim) {
  Check(input_dim > 0 && num_classes > 0, "model needs dimensions");
}

void ComplexLinearModel::Initialize(Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim()));
  for (std::size_t r = 0; r < weights_.rows(); ++r) {
    for (std::size_t c = 0; c < weights_.cols(); ++c) {
      weights_(r, c) = rng.ComplexNormal(scale * scale);
    }
  }
}

std::vector<Complex> ComplexLinearModel::PreActivations(
    const std::vector<Complex>& x) const {
  Check(x.size() == input_dim(), "input dimension mismatch");
  std::vector<Complex> z(num_classes());
  for (std::size_t r = 0; r < num_classes(); ++r) {
    z[r] = simd::ComplexDot(weights_.row(r), x.data(), x.size());
  }
  return z;
}

std::vector<double> ComplexLinearModel::ClassScores(
    const std::vector<Complex>& x) const {
  const auto z = PreActivations(x);
  std::vector<double> scores(z.size());
  for (std::size_t r = 0; r < z.size(); ++r) scores[r] = std::abs(z[r]);
  return scores;
}

int ComplexLinearModel::Predict(const std::vector<Complex>& x) const {
  const auto scores = ClassScores(x);
  return static_cast<int>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

std::vector<double> SoftmaxScores(const std::vector<double>& scores) {
  Check(!scores.empty(), "softmax of empty scores");
  const double max_score = *std::max_element(scores.begin(), scores.end());
  std::vector<double> probs(scores.size());
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    probs[i] = std::exp(scores[i] - max_score);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

double ComplexLinearModel::Train(const ComplexDataset& train,
                                 const ComplexTrainOptions& options,
                                 Rng& rng) {
  train.Validate();
  Check(train.dim == input_dim(), "dataset dimension mismatch");
  Check(train.num_classes == num_classes(), "dataset class count mismatch");
  Check(options.epochs > 0 && options.batch_size > 0,
        "invalid training options");
  Check(options.learning_rate > 0.0, "learning rate must be positive");
  Check(options.momentum >= 0.0 && options.momentum < 1.0,
        "momentum must be in [0, 1)");

  const std::size_t n = train.size();
  Check(n > 0, "empty training set");
  const std::size_t R = num_classes();
  const std::size_t U = input_dim();

  ComplexMatrix velocity(R, U);
  ComplexMatrix gradient(R, U);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<Complex> augmented;
  double final_epoch_loss = 0.0;

  static const obs::HistogramSpec kLossBuckets =
      obs::HistogramSpec::Linear(0.0, 5.0, 25);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const obs::ScopedSpan epoch_span = obs::Span("train.epoch");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(options.batch_size));
      gradient.Fill(Complex{0.0, 0.0});
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t idx = order[b];
        const std::vector<Complex>* x = &train.features[idx];
        if (options.input_augment) {
          augmented = *x;
          options.input_augment(augmented, rng);
          x = &augmented;
        }
        // Forward.
        std::vector<Complex> z = PreActivations(*x);
        if (options.output_noise_variance > 0.0) {
          for (Complex& v : z) {
            v += rng.ComplexNormal(options.output_noise_variance);
          }
        }
        std::vector<double> mags(R);
        for (std::size_t r = 0; r < R; ++r) mags[r] = std::abs(z[r]);
        const auto probs = SoftmaxScores(mags);
        const int label = train.labels[idx];
        epoch_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)],
                                         1e-12));
        // Backward: dL/dm_r = p_r - 1{r==label}; the complex gradient of
        // m = |z| w.r.t. W(r,i) is (z_r/|z_r|) * conj(x_i).
        for (std::size_t r = 0; r < R; ++r) {
          double g = probs[r];
          if (static_cast<int>(r) == label) g -= 1.0;
          if (mags[r] < 1e-12) continue;  // magnitude kink at 0
          const Complex direction = z[r] / mags[r];
          Complex* grad_row = gradient.row(r);
          const Complex scaled = g * direction;
          for (std::size_t i = 0; i < U; ++i) {
            grad_row[i] += scaled * std::conj((*x)[i]);
          }
        }
      }
      // SGD with momentum on the batch-mean gradient.
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t r = 0; r < R; ++r) {
        Complex* v_row = velocity.row(r);
        Complex* g_row = gradient.row(r);
        Complex* w_row = weights_.row(r);
        for (std::size_t i = 0; i < U; ++i) {
          v_row[i] = options.momentum * v_row[i] -
                     options.learning_rate * g_row[i] * inv_batch;
          w_row[i] += v_row[i];
        }
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(n);
    obs::Count("train.epochs");
    obs::Count("train.batches",
               (n + static_cast<std::size_t>(options.batch_size) - 1) /
                   static_cast<std::size_t>(options.batch_size));
    obs::SetGauge("train.loss", final_epoch_loss);
    obs::Observe("train.epoch_loss", final_epoch_loss, kLossBuckets);
  }
  return final_epoch_loss;
}

double ComplexLinearModel::Evaluate(const ComplexDataset& test) const {
  test.Validate();
  Check(test.dim == input_dim(), "dataset dimension mismatch");
  if (test.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += (Predict(test.features[i]) == test.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace metaai::nn
