// A campus deployment: one metasurface panel in a hallway serves several
// unrelated IoT tenants — a shelf camera classifying products, a Wi-Fi
// gesture sensor, and an access-control face camera — each with its own
// trained model, time-division multiplexed through the shared surface.
//
// Demonstrates core::SharedSurfaceScheduler: per-tenant deployments,
// TDMA frame layout against the controller's switching budget, and the
// per-tenant inference rate the shared panel sustains.
#include <cstdio>
#include <iostream>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace {

metaai::sim::OtaLinkConfig TenantLink(double tx_deg) {
  metaai::sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = metaai::rf::DegToRad(tx_deg),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = metaai::rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = metaai::rf::OfficeProfile();
  return config;
}

}  // namespace

int main() {
  using namespace metaai;

  std::cout << "== Shared-surface campus: three tenants, one panel ==\n";

  // Each tenant trains its own model for its own task.
  auto train_tenant = [](const data::Dataset& ds, std::uint64_t seed) {
    Rng rng(seed);
    core::TrainingOptions options;
    options.sync_error_injection = true;
    options.sync_gamma_scale_us =
        1.85 * sim::PaperEquivalentLatencyScale(256);
    return core::TrainModel(ds.train, options, rng);
  };
  const auto products = data::MakeFruitsLike();
  const auto gestures = data::MakeWidarLike();
  const auto faces = data::MakeFaceStreamLike();

  std::vector<core::DeviceSpec> tenants;
  tenants.push_back({.name = "shelf-camera",
                     .model = train_tenant(products, 1),
                     .link = TenantLink(20.0),
                     .options = {}});
  tenants.push_back({.name = "gesture-sensor",
                     .model = train_tenant(gestures, 2),
                     .link = TenantLink(-15.0),
                     .options = {}});
  // The face tenant uses subcarrier parallelism to shorten its slot.
  core::DeploymentOptions face_options;
  face_options.mode = core::ParallelismMode::kSubcarrier;
  face_options.parallel_width = 5;
  tenants.push_back({.name = "door-camera",
                     .model = train_tenant(faces, 3),
                     .link = TenantLink(45.0),
                     .options = face_options});

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::SharedSurfaceScheduler scheduler(surface, std::move(tenants));

  std::cout << "TDMA frame (" << scheduler.FrameDuration() * 1e3
            << " ms, " << scheduler.PerDeviceRate()
            << " inferences/s per tenant):\n";
  for (const auto& slot : scheduler.frame()) {
    std::printf("  %-14s  t=%7.3f ms  dur=%6.3f ms  (%zu rounds x %zu "
                "symbols)\n",
                slot.device.c_str(), slot.start_s * 1e3,
                slot.duration_s * 1e3, slot.rounds,
                slot.symbols_per_round);
  }

  sim::SyncModelConfig sync_config;
  sync_config.latency_scale = sim::PaperEquivalentLatencyScale(256);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng rng(9);
  const data::Dataset* test_sets[] = {&products, &gestures, &faces};
  for (std::size_t tenant = 0; tenant < scheduler.num_devices(); ++tenant) {
    const double acc = scheduler.EvaluateDevice(
        tenant, test_sets[tenant]->test, sync, rng, 80);
    std::printf("  %-14s accuracy over the air: %.1f%%\n",
                scheduler.device_name(tenant).c_str(), 100.0 * acc);
  }
  std::cout << "One panel, three tenants, no raw data over the air.\n";
  return 0;
}
