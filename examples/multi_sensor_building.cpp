// Privacy-preserving building management with multi-sensor fusion.
//
// An activity-recognition deployment fuses a wearable's accelerometer and
// gyroscope through ONE shared metasurface (§3.4): each sensor transmits
// its window in a time-division round, the surface applies that sensor's
// weight block, and the receiver fuses the complex partial sums before
// the magnitude (Eqns 11-12). The building server never sees raw motion
// data — only activity scores.
#include <iostream>

#include "core/metaai.h"
#include "data/multisensor.h"
#include "rf/geometry.h"

int main() {
  using namespace metaai;

  const data::MultiSensorDataset dataset = data::MakeUscHadLike();
  std::cout << "== Building management: " << dataset.name << " ==\n"
            << dataset.num_classes << " activities, sensors:";
  for (const auto& s : dataset.sensor_names) std::cout << ' ' << s;
  std::cout << "\n\n";

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link;
  link.geometry = {.tx_distance_m = 1.0,
                   .tx_angle_rad = rf::DegToRad(30.0),
                   .rx_distance_m = 3.0,
                   .rx_angle_rad = rf::DegToRad(40.0),
                   .frequency_hz = 5.25e9};
  link.environment.profile = rf::OfficeProfile();

  for (std::size_t sensors = 1; sensors <= dataset.num_sensors();
       ++sensors) {
    Rng rng(11);
    core::TrainingOptions training;
    training.sync_error_injection = true;
    training.sync_gamma_scale_us =
        1.85 * sim::PaperEquivalentLatencyScale(256);
    const auto model =
        core::TrainFusedModel(dataset, sensors, training, rng);
    const double digital =
        core::EvaluateFusedDigital(model, dataset, sensors);

    const core::Deployment deployment(model, surface, link);
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale =
        sim::PaperEquivalentLatencyScale(256);
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng eval_rng(111);
    const auto test =
        core::ConcatenateSensors(dataset, sensors, /*use_train=*/false);
    const double ota =
        deployment.EvaluateAccuracy(test, sync, eval_rng, 60);

    std::cout << sensors << " sensor(s): digital " << 100.0 * digital
              << "%, over the air " << 100.0 * ota << "%  ("
              << sensors * 256 << " symbols per round, one shared "
              << "metasurface)\n";
  }

  std::cout << "\nCross-modality fusion resolves activities neither sensor"
               " separates alone,\nwhile raw motion traces never leave the"
               " wireless channel.\n";
  return 0;
}
