// Face-recognition access control (the §5.4 case study as an
// application): ESP32-class cameras stream frames over the air; the
// metasurface performs identification in flight, so the access-control
// server receives only identity scores — never face images. The example
// also demonstrates receiver-relocation recalibration via beam scanning
// (§3.2's theta estimation).
#include <iostream>

#include "core/metaai.h"
#include "data/datasets.h"
#include "mts/beam_scan.h"
#include "rf/geometry.h"

int main() {
  using namespace metaai;

  const data::Dataset dataset = data::MakeFaceStreamLike();
  std::cout << "== Access control: " << dataset.train.size()
            << " enrollment frames, " << dataset.num_classes
            << " identities ==\n";

  Rng rng(5);
  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const auto model = core::TrainModel(dataset.train, training, rng);

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link;
  link.geometry = {.tx_distance_m = 1.0,
                   .tx_angle_rad = rf::DegToRad(30.0),
                   .rx_distance_m = 3.0,
                   .rx_angle_rad = rf::DegToRad(40.0),
                   .frequency_hz = 5.25e9};
  link.environment.profile = rf::OfficeProfile();

  // Suppose the access-control receiver was installed at an unknown
  // bearing: estimate it with a beam scan before mapping the weights
  // (the paper's theta estimation — a power-probe sweep over candidate
  // angles).
  {
    mts::Metasurface scan_surface{mts::MetasurfaceSpec{}};
    const mts::LinkGeometry truth = link.geometry;
    mts::LinkGeometry assumed = truth;
    assumed.rx_angle_rad = 0.0;
    const auto scan = mts::ScanForReceiver(
        scan_surface, assumed, rf::DegToRad(0.0), rf::DegToRad(60.0), 61,
        [&](std::span<const mts::PhaseCode> codes) {
          std::vector<mts::PhaseCode> copy(codes.begin(), codes.end());
          scan_surface.SetAllCodes(copy);
          return std::norm(scan_surface.Response(truth));
        });
    std::cout << "Beam scan estimated receiver bearing: "
              << rf::RadToDeg(scan.angle_rad) << " deg (true: "
              << rf::RadToDeg(truth.rx_angle_rad) << " deg)\n";
    link.geometry.rx_angle_rad = scan.angle_rad;
  }

  const core::Deployment deployment(model, surface, link);
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);

  // Stream: grant access when the top identity is confidently ahead.
  Rng eval_rng(51);
  int granted = 0;
  int denied = 0;
  int wrong_grant = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const double offset = sync.SampleOffsetUs(eval_rng);
    const auto scores = deployment.ClassScores(dataset.test.features[i],
                                               offset, eval_rng);
    // Confidence: best score must lead the runner-up by 10%.
    std::size_t best = 0;
    std::size_t second = 1;
    for (std::size_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[best]) {
        second = best;
        best = c;
      } else if (scores[c] > scores[second] || second == best) {
        second = c;
      }
    }
    if (scores[best] > 1.1 * scores[second]) {
      ++granted;
      if (static_cast<int>(best) != dataset.test.labels[i]) ++wrong_grant;
    } else {
      ++denied;  // fall back to a secondary factor
    }
  }
  std::cout << "Stream of 50 captures: " << granted << " confident grants ("
            << wrong_grant << " to the wrong identity), " << denied
            << " deferred to a second factor.\n";

  const double accuracy =
      deployment.EvaluateAccuracy(dataset.test, sync, eval_rng, 200);
  std::cout << "Raw identification accuracy over the air: "
            << 100.0 * accuracy << "% (paper case study: 78.54%)\n";
  return 0;
}
