// Quickstart: train a MetaAI model, deploy it on a simulated metasurface
// link, and classify images over the air.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"

int main() {
  using namespace metaai;

  // 1. A dataset: the MNIST-like synthetic digit task (16x16 images).
  const data::Dataset dataset = data::MakeMnistLike();
  std::cout << "Dataset: " << dataset.name << ", "
            << dataset.train.size() << " train / " << dataset.test.size()
            << " test samples, " << dataset.num_classes << " classes\n";

  // 2. Train the complex-valued single-layer network digitally. The
  //    robustness options inject sync errors and noise so the deployed
  //    model tolerates the physical channel (see §3.5 of the paper).
  Rng rng(42);
  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const core::TrainedModel model =
      core::TrainModel(dataset.train, training, rng);
  std::cout << "Digital (simulation) accuracy: "
            << 100.0 * core::EvaluateDigital(model, dataset.test) << "%\n";

  // 3. Deploy: a 16x16 2-bit metasurface, the paper's default geometry
  //    (Tx 1 m @30 deg, Rx 3 m @40 deg, 5.25 GHz), office multipath.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link;
  link.geometry = {.tx_distance_m = 1.0,
                   .tx_angle_rad = rf::DegToRad(30.0),
                   .rx_distance_m = 3.0,
                   .rx_angle_rad = rf::DegToRad(40.0),
                   .frequency_hz = 5.25e9};
  link.environment.profile = rf::OfficeProfile();
  link.mts_phase_noise_std = 0.05;
  const core::Deployment deployment(model, surface, link);
  std::cout << "Deployed: " << deployment.RoundsPerInference()
            << " transmission rounds per inference, mapping residual "
            << deployment.schedules().mean_relative_residual << ", link SNR "
            << deployment.link().NominalSnrDb() << " dB\n";

  // 4. Classify a few samples over the air. The sync model draws the
  //    metasurface clock offset every inference (coarse detection).
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  int correct = 0;
  constexpr int kDemo = 20;
  const std::size_t stride = dataset.test.size() / kDemo;
  for (int i = 0; i < kDemo; ++i) {
    const std::size_t index = static_cast<std::size_t>(i) * stride;
    const double offset_us = sync.SampleOffsetUs(rng);
    const int predicted =
        deployment.Classify(dataset.test.features[index], offset_us, rng);
    const int truth = dataset.test.labels[index];
    correct += (predicted == truth);
    std::printf("sample %3zu: true class %d -> predicted %d %s\n", index,
                truth, predicted, predicted == truth ? "" : " (miss)");
  }
  std::printf("Over-the-air demo accuracy: %d/%d\n", correct, kDemo);

  // 5. Full over-the-air evaluation.
  const double ota =
      deployment.EvaluateAccuracy(dataset.test, sync, rng, 200);
  std::cout << "Over-the-air (prototype) accuracy: " << 100.0 * ota
            << "%\n";
  return 0;
}
