// Smart retail scenario: shelf cameras recognize fruit categories without
// shipping raw images — the metasurface computes the classification while
// the frame is in flight, and the edge server receives only class scores.
//
// This example also explores the latency lever the paper's §3.3
// parallelism schemes provide: the store can run the same model
// sequentially (best accuracy, R transmission rounds) or on parallel
// subcarriers (one round, slight accuracy cost), and we print the
// end-to-end latency/energy a deployment would see for both.
#include <iostream>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"
#include "sim/energy_model.h"

int main() {
  using namespace metaai;

  const data::Dataset dataset = data::MakeFruitsLike();
  std::cout << "== Smart retail: " << dataset.name << " ("
            << dataset.num_classes << " product categories) ==\n";

  Rng rng(7);
  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const auto model = core::TrainModel(dataset.train, training, rng);
  std::cout << "Digital accuracy: "
            << 100.0 * core::EvaluateDigital(model, dataset.test) << "%\n";

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link;
  link.geometry = {.tx_distance_m = 1.0,
                   .tx_angle_rad = rf::DegToRad(30.0),
                   .rx_distance_m = 3.0,
                   .rx_angle_rad = rf::DegToRad(40.0),
                   .frequency_hz = 5.25e9};
  link.environment.profile = rf::OfficeProfile();
  link.mts_phase_noise_std = 0.05;

  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  const sim::EnergyModel energy;

  for (const auto mode : {core::ParallelismMode::kSequential,
                          core::ParallelismMode::kSubcarrier}) {
    core::DeploymentOptions options;
    options.mode = mode;
    const core::Deployment deployment(model, surface, link, options);
    Rng eval_rng(71);
    const double accuracy =
        deployment.EvaluateAccuracy(dataset.test, sync, eval_rng, 150);
    const auto cost = energy.MetaAiRow(
        dataset.train.dim, dataset.num_classes,
        dataset.num_classes / deployment.RoundsPerInference());
    std::cout << "\nMode: " << core::ParallelismModeName(mode) << "\n"
              << "  over-the-air accuracy: " << 100.0 * accuracy << "%\n"
              << "  rounds per frame:      "
              << deployment.RoundsPerInference() << "\n"
              << "  end-to-end latency:    " << cost.total_ms << " ms\n"
              << "  device energy/frame:   " << cost.total_mj << " mJ\n";
  }

  std::cout << "\nThe edge server never receives shelf imagery — only "
               "per-category scores.\n";
  return 0;
}
