// Fig 31 (Appendix A.3): accuracy vs the number of parallel subcarriers /
// antennas. One shared metasurface configuration must realize one weight
// per simultaneous output (Eqns 9-10); as the width grows, the joint
// phase optimization has fewer degrees of freedom per target and the
// realized weights degrade — accuracy falls while latency (rounds per
// inference) improves proportionally.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(31);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 31: Accuracy (%) vs parallel width",
              {"Width", "Subcarrier", "Antenna", "Rounds/inference"});
  for (const std::size_t width : {1u, 2u, 4u, 6u, 8u, 10u}) {
    std::vector<std::string> row{std::to_string(width)};
    std::size_t rounds = 0;
    for (const auto mode : {core::ParallelismMode::kSubcarrier,
                            core::ParallelismMode::kAntenna}) {
      core::DeploymentOptions options;
      options.mode = mode;
      options.parallel_width = width;
      sim::OtaLinkConfig config = DefaultLinkConfig();
      // Noise-limited budget: realizing K simultaneous targets splits the
      // aperture, so each output's amplitude shrinks ~1/K — the physical
      // driver (together with the joint-solve residual) of the Fig 31
      // degradation.
      config.budget.noise_floor_dbm = -58.0;
      core::Deployment deployment(model, surface, config, options);
      rounds = deployment.RoundsPerInference();
      Rng eval_rng(311);
      const sim::SyncModel sync = DeploymentSyncModel();
      row.push_back(FormatPercent(
          deployment.EvaluateAccuracy(ds.test, sync, eval_rng, 100)));
    }
    row.push_back(std::to_string(rounds));
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig31] width=%zu done\n", width);
  }
  table.Print(std::cout);
  std::cout << "(Shape check: accuracy decreases gradually as width grows"
               " while rounds per inference shrink — the accuracy/latency"
               " trade-off.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig31_parallel_width");
  metaai::bench::Run();
  return 0;
}
