// Fig 23: impact of the modulation scheme.
//
// The input encoding carries one pixel per symbol at the scheme's bit
// depth (BPSK = binarized pixels ... 256-QAM = 8-bit pixels). The network
// is retrained per scheme; accuracy varies only slightly with modulation
// order because even coarse pixel depth retains most class information.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 23: Accuracy (%) per modulation scheme",
              {"Modulation", "Bits/symbol", "Simulation", "Over the air"});
  for (const rf::Modulation scheme : rf::AllModulations()) {
    Rng rng(23);
    const auto model =
        core::TrainModel(ds.train, RobustTrainingOptions(scheme), rng);
    const double sim_acc = core::EvaluateDigital(model, ds.test);
    Rng eval_rng(231);
    const double ota = PrototypeAccuracy(model, surface, DefaultLinkConfig(),
                                         ds.test, eval_rng, 120);
    table.AddRow({rf::ModulationName(scheme),
                  std::to_string(rf::BitsPerSymbol(scheme)),
                  FormatPercent(sim_acc), FormatPercent(ota)});
    std::fprintf(stderr, "[fig23] %s done\n",
                 rf::ModulationName(scheme).c_str());
  }
  table.Print(std::cout);
  std::cout << "(Shape check: accuracy varies only slightly across BPSK"
               " ... 256-QAM; paper: >= 88.7%.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig23_modulation");
  metaai::bench::Run();
  return 0;
}
