// Micro-benchmarks (google-benchmark) for the heavy kernels: digital LNN
// inference, CNN inference, the metasurface configuration solver, one
// over-the-air symbol-sequence transmission, and the dispatched SIMD
// kernels (simd/kernels.h) in scalar-vs-AVX2 arms. These ground the
// energy model's server-compute assumptions in measured numbers on this
// machine and gate the vectorization win (>= 2x on at least two kernels
// when the host has AVX2).
//
// Counter hygiene: google-benchmark picks its iteration counts
// adaptively, so any obs counters emitted inside the timing loops are
// run-dependent. The timing loops therefore run under a throwaway
// registry, and a separate fixed-iteration measurement pass re-runs each
// workload a pinned number of times under the report registry — those
// counters are deterministic and baseline-gated at zero tolerance
// (bench/baselines/micro_kernels.json).
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_util.h"
#include "data/encoding.h"
#include "nn/conv_net.h"
#include "simd/kernels.h"

namespace metaai::bench {
namespace {

const data::Dataset& SharedDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
  return ds;
}

void BM_LnnInference(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(1);
  nn::ComplexLinearModel model(ds.train.dim, ds.num_classes);
  model.Initialize(rng);
  const auto x = data::EncodeSample(ds.train.features[0],
                                    rf::Modulation::kQam256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x));
  }
}
BENCHMARK(BM_LnnInference);

void BM_CnnInference(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(2);
  nn::ConvNet cnn({.height = 16,
                   .width = 16,
                   .conv1_channels = 8,
                   .conv2_channels = 16,
                   .hidden = 64,
                   .num_classes = ds.num_classes});
  cnn.Initialize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnn.Predict(ds.train.features[0]));
  }
}
BENCHMARK(BM_CnnInference);

void BM_ConfigSolverSingleTarget(benchmark::State& state) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  const auto steering = link.SteeringVector(0);
  Rng rng(3);
  const sim::Complex target = rng.UnitPhasor() * 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mts::SolveSingleTarget(steering, target));
  }
}
BENCHMARK(BM_ConfigSolverSingleTarget);

void BM_OtaTransmitSequence(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(4);
  const auto model = core::TrainModel(
      ds.train, core::TrainingOptions{.epochs = 1}, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  const auto mapped = core::MapWeights(model.network.weights(), link,
                       {.scheme = core::MappingScheme::kSequential});
  const auto symbols = data::EncodeSample(ds.train.features[0],
                                          rf::Modulation::kQam256);
  Rng noise_rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        link.TransmitSequence(symbols, mapped.rounds[0], 0.0, noise_rng));
  }
}
BENCHMARK(BM_OtaTransmitSequence);

void BM_WeightMappingPerSymbol(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(6);
  const auto model = core::TrainModel(
      ds.train, core::TrainingOptions{.epochs = 1}, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  for (auto _ : state) {
    const sim::OtaLink link(surface, DefaultLinkConfig());
    benchmark::DoNotOptimize(
        core::MapWeights(model.network.weights(), link,
                       {.scheme = core::MappingScheme::kSequential}));
  }
}
BENCHMARK(BM_WeightMappingPerSymbol);

// Solver fan-out scaling: sequential MapWeights over a 10-class, 64-symbol
// weight matrix on the 16x16 surface — 640 independent single-target
// solves — at 1/2/4 worker threads. The arg is the thread count;
// comparing the per-arg timings shows the metaai::par speedup (results
// are bitwise identical across args by construction).
void BM_MapSequentialFanout(benchmark::State& state) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};  // 16x16
  const sim::OtaLink link(surface, DefaultLinkConfig());
  Rng rng(7);
  ComplexMatrix weights(10, 64);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      weights(r, c) = rng.UnitPhasor() * (0.5 + rng.Uniform());
    }
  }
  const par::ScopedThreadCount threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MapWeights(
        weights, link, {.scheme = core::MappingScheme::kSequential}));
  }
}
BENCHMARK(BM_MapSequentialFanout)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Dispatched SIMD kernels, one scalar arm and (when the host supports
// it) one AVX2 arm each. Shared deterministic inputs; the per-arm
// ScopedLevel pins the dispatch path for the whole timing loop.

constexpr std::size_t kKernelLen = 4096;

struct SimdInputs {
  std::vector<double> re, im;
  std::vector<std::uint8_t> codes;
  std::vector<simd::Complex> a, b;
  std::vector<simd::Complex> even, odd, twiddles;
  std::vector<simd::Complex> symbols;
  std::vector<std::uint32_t> values;
};

const SimdInputs& SharedSimdInputs() {
  static const SimdInputs inputs = [] {
    SimdInputs in;
    Rng rng(8);
    in.re.resize(kKernelLen);
    in.im.resize(kKernelLen);
    in.codes.resize(kKernelLen);
    in.a.resize(kKernelLen);
    in.b.resize(kKernelLen);
    in.even.resize(kKernelLen);
    in.odd.resize(kKernelLen);
    in.twiddles.resize(kKernelLen);
    in.symbols.resize(kKernelLen);
    in.values.resize(kKernelLen);
    for (std::size_t i = 0; i < kKernelLen; ++i) {
      in.re[i] = rng.Normal();
      in.im[i] = rng.Normal();
      in.codes[i] =
          static_cast<std::uint8_t>(rng.UniformInt(std::uint64_t{4}));
      in.a[i] = rng.ComplexNormal();
      in.b[i] = rng.ComplexNormal();
      in.even[i] = rng.ComplexNormal();
      in.odd[i] = rng.ComplexNormal();
      in.twiddles[i] = rng.UnitPhasor();
      in.symbols[i] = rng.ComplexNormal();
    }
    return in;
  }();
  return inputs;
}

void BM_KernelPhasedSum(benchmark::State& state, simd::Level level) {
  const SimdInputs& in = SharedSimdInputs();
  const simd::ScopedLevel force(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::PhasedSum(in.re.data(), in.im.data(),
                                             in.codes.data(), kKernelLen));
  }
}

void BM_KernelComplexDot(benchmark::State& state, simd::Level level) {
  const SimdInputs& in = SharedSimdInputs();
  const simd::ScopedLevel force(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::ComplexDot(in.a.data(), in.b.data(), kKernelLen));
  }
}

void BM_KernelButterflyPass(benchmark::State& state, simd::Level level) {
  SimdInputs in = SharedSimdInputs();  // mutated in place each iteration
  const simd::ScopedLevel force(level);
  for (auto _ : state) {
    simd::ButterflyPass(in.even.data(), in.odd.data(), in.twiddles.data(),
                        kKernelLen, false);
    benchmark::DoNotOptimize(in.even.data());
  }
}

void BM_KernelHardDecideQam(benchmark::State& state, simd::Level level) {
  SimdInputs in = SharedSimdInputs();
  const simd::ScopedLevel force(level);
  for (auto _ : state) {
    simd::HardDecideQam(in.symbols.data(), kKernelLen, /*levels=*/16,
                        /*norm=*/13.038404810405298, /*half_bits=*/4,
                        in.values.data());
    benchmark::DoNotOptimize(in.values.data());
  }
}

/// The kernels the speedup gate scores, with their per-level bench arms.
constexpr const char* kSimdKernels[] = {
    "BM_KernelPhasedSum", "BM_KernelComplexDot", "BM_KernelButterflyPass",
    "BM_KernelHardDecideQam"};

void RegisterSimdBenches() {
  using Fn = void (*)(benchmark::State&, simd::Level);
  const std::pair<const char*, Fn> kernels[] = {
      {"BM_KernelPhasedSum", BM_KernelPhasedSum},
      {"BM_KernelComplexDot", BM_KernelComplexDot},
      {"BM_KernelButterflyPass", BM_KernelButterflyPass},
      {"BM_KernelHardDecideQam", BM_KernelHardDecideQam}};
  for (const auto& [name, fn] : kernels) {
    benchmark::RegisterBenchmark((std::string(name) + "/scalar").c_str(), fn,
                                 simd::Level::kScalar);
    if (simd::Avx2Supported()) {
      benchmark::RegisterBenchmark((std::string(name) + "/avx2").c_str(), fn,
                                   simd::Level::kAvx2);
    }
  }
}

// ---------------------------------------------------------------------

/// Fixed-iteration measurement pass: re-runs the counted workloads a
/// pinned number of times under the report registry, so every counter in
/// BENCH_micro_kernels.json is deterministic (same dispatch level, same
/// machine) and the baseline gates them at zero tolerance.
void FixedIterationCounterPass() {
  constexpr int kIterations = 4;
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  const auto steering = link.SteeringVector(0);
  Rng rng(3);
  const sim::Complex target = rng.UnitPhasor() * 100.0;
  for (int i = 0; i < kIterations; ++i) {
    mts::SolveSingleTarget(steering, target);
  }

  Rng map_rng(7);
  ComplexMatrix weights(4, 16);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      weights(r, c) = map_rng.UnitPhasor() * (0.5 + map_rng.Uniform());
    }
  }
  const auto mapped = core::MapWeights(
      weights, link, {.scheme = core::MappingScheme::kSequential});

  const auto symbols = data::EncodeSample(
      SharedDataset().train.features[0], rf::Modulation::kQam256);
  // One schedule entry per transmitted symbol: truncate the encoded
  // stream to the mapped round's length.
  const std::vector<sim::Complex> stream(
      symbols.begin(), symbols.begin() + mapped.rounds[0].size());
  Rng noise_rng(5);
  for (int i = 0; i < kIterations; ++i) {
    link.TransmitSequence(stream, mapped.rounds[0], 0.0, noise_rng);
  }
}

/// Scores the scalar-vs-AVX2 arms from the recorded timings: prints the
/// speedup table and enforces the vectorization gate — at least two
/// kernels at >= 2x — whenever the host has AVX2.
int GateSimdSpeedups(const std::map<std::string, double>& times_ns) {
  if (!simd::Avx2Supported()) {
    std::cout << "(AVX2 not supported on this host; scalar arms only, "
                 "speedup gate skipped)\n";
    return 0;
  }
  Table table("Micro-kernels: scalar vs AVX2 dispatch",
              {"Kernel", "Scalar ns", "AVX2 ns", "Speedup"});
  int fast_kernels = 0;
  for (const char* kernel : kSimdKernels) {
    const auto scalar = times_ns.find(std::string(kernel) + "/scalar");
    const auto avx2 = times_ns.find(std::string(kernel) + "/avx2");
    if (scalar == times_ns.end() || avx2 == times_ns.end()) continue;
    const double speedup = scalar->second / avx2->second;
    if (speedup >= 2.0) ++fast_kernels;
    table.AddRow({kernel, FormatDouble(scalar->second, 1),
                  FormatDouble(avx2->second, 1), FormatDouble(speedup, 2)});
  }
  table.Print(std::cout);
  if (fast_kernels < 2) {
    std::fprintf(stderr,
                 "FAILED: only %d SIMD kernels reached the 2x speedup gate "
                 "(need 2)\n",
                 fast_kernels);
    return 1;
  }
  std::cout << "(" << fast_kernels
            << " of 4 kernels at >= 2x over scalar on AVX2)\n";
  return 0;
}

// Console reporter that also records each benchmark's adjusted real
// time as a BenchReport headline, so micro-kernel timings land in
// BENCH_micro_kernels.json alongside the other bench documents and can
// be tracked by metaai_bench_diff. The same timings feed the in-binary
// SIMD speedup gate through `times_ns`.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  ReportingConsoleReporter(BenchReport* report,
                           std::map<std::string, double>* times_ns)
      : report_(report), times_ns_(times_ns) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      report_->Headline(run.benchmark_name() + ".real_time_ns",
                        run.GetAdjustedRealTime());
      (*times_ns_)[run.benchmark_name()] = run.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
  std::map<std::string, double>* times_ns_;
};

}  // namespace
}  // namespace metaai::bench

int main(int argc, char** argv) {
  metaai::bench::BenchReport report("micro_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  metaai::bench::RegisterSimdBenches();
  std::map<std::string, double> times_ns;
  metaai::bench::ReportingConsoleReporter reporter(&report, &times_ns);
  {
    // The timing loops pick their iteration counts adaptively, so the
    // counters they emit are run-dependent: swallow them in a throwaway
    // registry (timing headlines still reach the report).
    metaai::obs::Registry timing_registry;
    const metaai::obs::ScopedRegistry scoped(&timing_registry);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  metaai::bench::FixedIterationCounterPass();
  return metaai::bench::GateSimdSpeedups(times_ns);
}
