// Micro-benchmarks (google-benchmark) for the heavy kernels: digital LNN
// inference, CNN inference, the metasurface configuration solver and one
// over-the-air symbol-sequence transmission. These ground the energy
// model's server-compute assumptions in measured numbers on this machine.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "data/encoding.h"
#include "nn/conv_net.h"

namespace metaai::bench {
namespace {

const data::Dataset& SharedDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
  return ds;
}

void BM_LnnInference(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(1);
  nn::ComplexLinearModel model(ds.train.dim, ds.num_classes);
  model.Initialize(rng);
  const auto x = data::EncodeSample(ds.train.features[0],
                                    rf::Modulation::kQam256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x));
  }
}
BENCHMARK(BM_LnnInference);

void BM_CnnInference(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(2);
  nn::ConvNet cnn({.height = 16,
                   .width = 16,
                   .conv1_channels = 8,
                   .conv2_channels = 16,
                   .hidden = 64,
                   .num_classes = ds.num_classes});
  cnn.Initialize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnn.Predict(ds.train.features[0]));
  }
}
BENCHMARK(BM_CnnInference);

void BM_ConfigSolverSingleTarget(benchmark::State& state) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  const auto steering = link.SteeringVector(0);
  Rng rng(3);
  const sim::Complex target = rng.UnitPhasor() * 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mts::SolveSingleTarget(steering, target));
  }
}
BENCHMARK(BM_ConfigSolverSingleTarget);

void BM_OtaTransmitSequence(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(4);
  const auto model = core::TrainModel(
      ds.train, core::TrainingOptions{.epochs = 1}, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  const auto mapped = core::MapWeights(model.network.weights(), link,
                       {.scheme = core::MappingScheme::kSequential});
  const auto symbols = data::EncodeSample(ds.train.features[0],
                                          rf::Modulation::kQam256);
  Rng noise_rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        link.TransmitSequence(symbols, mapped.rounds[0], 0.0, noise_rng));
  }
}
BENCHMARK(BM_OtaTransmitSequence);

void BM_WeightMappingPerSymbol(benchmark::State& state) {
  const auto& ds = SharedDataset();
  Rng rng(6);
  const auto model = core::TrainModel(
      ds.train, core::TrainingOptions{.epochs = 1}, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  for (auto _ : state) {
    const sim::OtaLink link(surface, DefaultLinkConfig());
    benchmark::DoNotOptimize(
        core::MapWeights(model.network.weights(), link,
                       {.scheme = core::MappingScheme::kSequential}));
  }
}
BENCHMARK(BM_WeightMappingPerSymbol);

// Solver fan-out scaling: sequential MapWeights over a 10-class, 64-symbol
// weight matrix on the 16x16 surface — 640 independent single-target
// solves — at 1/2/4 worker threads. The arg is the thread count;
// comparing the per-arg timings shows the metaai::par speedup (results
// are bitwise identical across args by construction).
void BM_MapSequentialFanout(benchmark::State& state) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};  // 16x16
  const sim::OtaLink link(surface, DefaultLinkConfig());
  Rng rng(7);
  ComplexMatrix weights(10, 64);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      weights(r, c) = rng.UnitPhasor() * (0.5 + rng.Uniform());
    }
  }
  const par::ScopedThreadCount threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MapWeights(
        weights, link, {.scheme = core::MappingScheme::kSequential}));
  }
}
BENCHMARK(BM_MapSequentialFanout)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Console reporter that also records each benchmark's adjusted real
// time as a BenchReport headline, so micro-kernel timings land in
// BENCH_micro_kernels.json alongside the other bench documents and can
// be tracked by metaai_bench_diff.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      report_->Headline(run.benchmark_name() + ".real_time_ns",
                        run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace
}  // namespace metaai::bench

int main(int argc, char** argv) {
  metaai::bench::BenchReport report("micro_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  metaai::bench::ReportingConsoleReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
