// Fig 17: performance of the multipath-cancellation scheme.
//
// Three indoor environments of increasing multipath richness (corridor,
// office, laboratory), directional vs omni-directional antennas, with and
// without the zero-mean/mid-symbol-flip cancellation scheme, each averaged
// over 10 receiver locations (channel realizations).
//
// Expected shape: without cancellation the corridor (clean) beats the lab
// (rich) and Dire beats Omni (directional antennas suppress the
// environment path); with cancellation every combination recovers to a
// high, nearly uniform accuracy.
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"

namespace metaai::bench {
namespace {

double MeanAccuracyOverLocations(const core::TrainedModel& model,
                                 const rf::MultipathProfile& profile,
                                 rf::AntennaType antenna,
                                 bool cancellation) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  std::vector<double> accuracies;
  const data::Dataset ds = data::MakeMnistLike(
      {.train_per_class = 1, .test_per_class = 50});  // test split only
  Rng rng(17);
  accuracies = ParallelTrials(10, rng, [&](Rng& trial_rng, std::size_t i) {
    const std::uint64_t location = i + 1;
    sim::OtaLinkConfig config = DefaultLinkConfig(1000 + location);
    config.environment.profile = profile;
    config.tx_antenna = antenna;
    config.rx_antenna = antenna;
    config.multipath_cancellation = cancellation;
    return PrototypeAccuracy(model, surface, config, ds.test, trial_rng, 60);
  });
  return Mean(accuracies);
}

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(171);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);

  const rf::MultipathProfile profiles[] = {
      rf::CorridorProfile(), rf::OfficeProfile(), rf::LaboratoryProfile()};

  Table table("Fig 17: Multipath cancellation (mean accuracy %, 10 Rx "
              "locations)",
              {"Environment", "Antenna", "w/o cancellation",
               "with cancellation"});
  for (const auto& profile : profiles) {
    for (const auto antenna :
         {rf::AntennaType::kDirectional, rf::AntennaType::kOmni}) {
      const double without = MeanAccuracyOverLocations(
          model, profile, antenna, /*cancellation=*/false);
      const double with = MeanAccuracyOverLocations(
          model, profile, antenna, /*cancellation=*/true);
      table.AddRow({profile.name, rf::AntennaName(antenna),
                    FormatPercent(without), FormatPercent(with)});
      std::fprintf(stderr, "[fig17] %s/%s done\n", profile.name.c_str(),
                   rf::AntennaName(antenna).c_str());
    }
  }
  table.Print(std::cout);
  std::cout << "(Shape check: w/o cancellation, corridor > office > lab and"
               " Dire > Omni;\n with cancellation all combinations recover"
               " to a uniformly high accuracy.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig17_multipath");
  metaai::bench::Run();
  return 0;
}
