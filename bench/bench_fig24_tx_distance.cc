// Fig 24: impact of the Tx-MTS distance (1 to 22 m along the 30-degree
// incidence direction). The reflected path loses power with the product
// of the two legs, so accuracy decays gently with Tx distance but stays
// usable across the sweep (paper: >= ~78.9%).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(24);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 24: Accuracy (%) vs Tx-MTS distance",
              {"Tx-MTS distance (m)", "Accuracy"});
  Rng eval_rng(241);
  for (double distance = 1.0; distance <= 22.0; distance += 3.0) {
    sim::OtaLinkConfig config =
        DefaultLinkConfig(2400 + static_cast<std::uint64_t>(distance));
    config.geometry.tx_distance_m = distance;
    const double acc = PrototypeAccuracy(model, surface, config, ds.test,
                                         eval_rng, 100);
    table.AddRow({FormatDouble(distance, 0), FormatPercent(acc)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: gentle decay with distance, usable across"
               " the whole 1-22 m sweep.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig24_tx_distance");
  metaai::bench::Run();
  return 0;
}
