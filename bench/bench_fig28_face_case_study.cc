// Fig 28: case study — real-time face recognition with IoT cameras.
//
// Ten identities are enrolled from ~60 camera frames each (five monitored
// backgrounds) plus 30 CelebA-like supplementary images; at test time each
// "volunteer" stands in a monitored area 20 times and the stream is
// classified over the air. We report per-user and average accuracy
// (paper: 78.54% average).
#include "bench_util.h"

#include "common/table.h"
#include "nn/metrics.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeFaceStreamLike();
  std::cout << "Enrolled " << ds.num_classes << " identities from "
            << ds.train.size() << " training frames; "
            << ds.test.size() << " live captures.\n";

  Rng rng(28);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, DefaultLinkConfig());
  const sim::SyncModel sync = DeploymentSyncModel();

  // Classify every live capture and tally per-user accuracy.
  Rng eval_rng(281);
  std::vector<int> predictions;
  predictions.reserve(ds.test.size());
  for (std::size_t i = 0; i < ds.test.size(); ++i) {
    const double offset = sync.SampleOffsetUs(eval_rng);
    predictions.push_back(
        deployment.Classify(ds.test.features[i], offset, eval_rng));
  }
  const auto confusion =
      nn::ConfusionMatrix(predictions, ds.test.labels, ds.num_classes);
  const auto recall = nn::PerClassRecall(confusion);

  Table table("Fig 28: Real-time face recognition (per-user accuracy %)",
              {"User", "Accuracy"});
  for (std::size_t u = 0; u < recall.size(); ++u) {
    table.AddRow({"U" + std::to_string(u + 1), FormatPercent(recall[u])});
  }
  table.Print(std::cout);
  std::cout << "Average accuracy: "
            << FormatPercent(nn::Accuracy(predictions, ds.test.labels))
            << "% (paper: 78.54%)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig28_face_case_study");
  metaai::bench::Run();
  return 0;
}
