// Fig 25: impact of the Tx-MTS incidence angle (0 to 80 degrees on a 1 m
// semicircle). Inside the panel's field of view ([-60, 60] degrees)
// accuracy stays flat; beyond the FoV edge the element pattern rolls off
// sharply and accuracy declines (paper: >= 84.85% up to 60 deg, ~75% at
// 80 deg).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(25);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 25: Accuracy (%) vs Tx-MTS incidence angle",
              {"Angle (deg)", "Accuracy"});
  Rng eval_rng(251);
  for (double angle_deg = 0.0; angle_deg <= 80.0; angle_deg += 10.0) {
    sim::OtaLinkConfig config =
        DefaultLinkConfig(2500 + static_cast<std::uint64_t>(angle_deg));
    config.geometry.tx_angle_rad = rf::DegToRad(angle_deg);
    const double acc = PrototypeAccuracy(model, surface, config, ds.test,
                                         eval_rng, 100);
    table.AddRow({FormatDouble(angle_deg, 0), FormatPercent(acc)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: flat inside the [-60, 60] deg FoV, declining"
               " beyond it.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig25_tx_angle");
  metaai::bench::Run();
  return 0;
}
