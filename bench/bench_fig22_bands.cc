// Fig 22: generalization across frequency bands.
//
// The dual-band prototype (MTS 1) serves 2.4 GHz and 5 GHz links; the
// single-band prototype (MTS 2) serves 3.5 GHz. Each band is evaluated at
// ten receiver locations; MetaAI performs uniformly well since the weight
// mapping re-solves against the band's propagation phases.
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(22);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);

  struct Band {
    double frequency_hz;
    const char* label;
    mts::MetasurfaceSpec spec;
  };
  const Band bands[] = {
      {2.4e9, "2.4 GHz (MTS 1)", mts::DualBandSpec()},
      {3.5e9, "3.5 GHz (MTS 2)", mts::SingleBandSpec()},
      {5.0e9, "5 GHz (MTS 1)", mts::DualBandSpec()},
  };

  Table table("Fig 22: Accuracy (%) per frequency band, 10 Rx locations",
              {"Band", "Mean", "Min", "Max"});
  for (const Band& band : bands) {
    const mts::Metasurface surface{band.spec};
    std::vector<double> accuracies;
    Rng eval_rng(221);
    for (std::uint64_t location = 1; location <= 10; ++location) {
      sim::OtaLinkConfig config = DefaultLinkConfig(2200 + location);
      config.geometry.frequency_hz = band.frequency_hz;
      // Random receiver placement per location.
      Rng place(2200 + location);
      config.geometry.rx_distance_m = place.Uniform(2.0, 5.0);
      config.geometry.rx_angle_rad = rf::DegToRad(place.Uniform(10.0, 55.0));
      accuracies.push_back(PrototypeAccuracy(model, surface, config, ds.test,
                                             eval_rng, 60));
    }
    table.AddRow({band.label, FormatPercent(Mean(accuracies)),
                  FormatPercent(Min(accuracies)),
                  FormatPercent(Max(accuracies))});
    std::fprintf(stderr, "[fig22] %s done\n", band.label);
  }
  table.Print(std::cout);
  std::cout << "(Shape check: all three bands land at a similar, high"
               " accuracy — paper: >= 88.4%.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig22_bands");
  metaai::bench::Run();
  return 0;
}
