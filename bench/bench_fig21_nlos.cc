// Fig 21: performance in NLoS scenarios.
//
// The MTS sits at a corridor corner; Tx and Rx cannot see each other (no
// direct environment path) but both see the panel. The Rx-MTS distance is
// swept from 1 to 22 m. MetaAI keeps working because the computation
// rides on the MTS reflection; accuracy falls gently with distance as the
// reflected-path SNR drops.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(21);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 21: Accuracy (%) in the NLoS corner vs Rx-MTS distance",
              {"Rx-MTS distance (m)", "Accuracy"});
  Rng eval_rng(211);
  for (double distance = 1.0; distance <= 22.0; distance += 3.0) {
    sim::OtaLinkConfig config =
        DefaultLinkConfig(2100 + static_cast<std::uint64_t>(distance));
    config.environment.profile = rf::CorridorProfile();
    config.environment.direct_tx_rx = false;  // corner: Tx-Rx blocked
    config.geometry.rx_distance_m = distance;
    const double acc = PrototypeAccuracy(model, surface, config, ds.test,
                                         eval_rng, 100);
    table.AddRow({FormatDouble(distance, 0), FormatPercent(acc)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: the paper reports >= ~76.6% across 1-22 m;\n"
               " accuracy decays gently with the reflected-path SNR.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig21_nlos");
  metaai::bench::Run();
  return 0;
}
