// Fig 20: multi-sensor late fusion over a single shared metasurface.
//
// Three multi-sensor datasets (Multi-PIE-like camera views,
// RF-Sauron-like receive antennas, USC-HAD-like accelerometer+gyroscope).
// Each sensor's data is transmitted in a time-division round with its own
// weight block (Eqn 11) and the complex partial sums are fused before the
// magnitude (Eqn 12) — equivalently, one linear layer over the sensor
// concatenation. Accuracy rises with every added sensor; cross-modality
// fusion (USC-HAD) gains the most (paper: +27.06%).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void RunDataset(const data::MultiSensorDataset& ds, Table& table) {
  std::vector<std::string> row{ds.name};
  double first = 0.0;
  double last = 0.0;
  for (std::size_t n = 1; n <= ds.num_sensors(); ++n) {
    // One robustly trained fused model per sensor count; the same model
    // is scored digitally and over the air (U = n * 256 symbols in time
    // division over the shared surface).
    Rng rng(20);
    core::TrainingOptions robust = RobustTrainingOptions();
    robust.sync_gamma_scale_us =
        1.85 * sim::PaperEquivalentLatencyScale(256);
    const auto model = core::TrainFusedModel(ds, n, robust, rng);
    const double digital = core::EvaluateFusedDigital(model, ds, n);

    const mts::Metasurface surface{mts::MetasurfaceSpec{}};
    core::Deployment deployment(model, surface, DefaultLinkConfig());
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale = sim::PaperEquivalentLatencyScale(256);
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng eval_rng(201);
    const auto test = core::ConcatenateSensors(ds, n, /*use_train=*/false);
    const double ota =
        deployment.EvaluateAccuracy(test, sync, eval_rng, 150);

    row.push_back(FormatPercent(digital) + " / " + FormatPercent(ota));
    if (n == 1) first = ota;
    last = ota;
  }
  while (row.size() < 4) row.push_back("-");
  row.push_back("+" + FormatPercent(last - first));
  table.AddRow(std::move(row));
  std::fprintf(stderr, "[fig20] %s done\n", ds.name.c_str());
}

void Run() {
  Table table("Fig 20: Multi-sensor fusion (accuracy %: digital / OTA)",
              {"Dataset", "1 sensor", "2 sensors", "3 sensors",
               "Fusion gain"});
  // Larger test splits than the paper's (same training sizes) to keep
  // the over-the-air columns statistically stable.
  RunDataset(data::MakeMultiPieLike({.test_per_class = 15}), table);
  RunDataset(data::MakeRfSauronLike(), table);
  RunDataset(data::MakeUscHadLike({.test_per_class = 25}), table);
  table.Print(std::cout);
  std::cout << "(Shape check: accuracy rises with every added sensor; the\n"
               " cross-modality USC-HAD set gains the most, ~+27 points in"
               " the paper.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig20_multisensor");
  metaai::bench::Run();
  return 0;
}
