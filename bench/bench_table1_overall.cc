// Table 1: overall recognition accuracy on the six datasets.
//
// Columns reproduce the paper's: a deep digital baseline (our compact CNN
// standing in for ResNet-18), DiscreteNN (weights constrained to the 2-bit
// phase domain from the start) in simulation and over the air, and MetaAI
// (continuous training, then quantized over-the-air deployment) in
// simulation and over the air. Expected shape: CNN >> MetaAI-sim >
// MetaAI-proto (gap <= ~7 points) >> DiscreteNN.
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"
#include "data/encoding.h"
#include "nn/conv_net.h"
#include "nn/discrete_nn.h"

namespace metaai::bench {
namespace {

struct Row {
  std::string dataset;
  std::size_t train_n;
  std::size_t test_n;
  std::size_t classes;
  double cnn;
  double discrete_sim;
  double discrete_proto;
  double metaai_sim;
  double metaai_proto;
};

Row RunDataset(const std::string& name) {
  const data::Dataset ds = data::MakeByName(name);
  Row row{ds.name, ds.train.size(), ds.test.size(), ds.num_classes,
          0,       0,               0,              0,
          0};

  // Deep digital baseline (ResNet-18 stand-in).
  {
    Rng rng(101);
    nn::ConvNet cnn({.height = ds.height,
                     .width = ds.width,
                     .conv1_channels = 8,
                     .conv2_channels = 16,
                     .hidden = 64,
                     .num_classes = ds.num_classes});
    cnn.Initialize(rng);
    cnn.Train(ds.train, {}, rng);
    row.cnn = cnn.Evaluate(ds.test);
  }

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  // DiscreteNN baseline: discrete-constrained training.
  {
    Rng rng(102);
    const auto train = data::EncodeDataset(ds.train, rf::Modulation::kQam256);
    const auto test = data::EncodeDataset(ds.test, rf::Modulation::kQam256);
    nn::DiscreteNnModel discrete(ds.train.dim, ds.num_classes);
    discrete.Initialize(rng);
    discrete.Train(train, {}, rng);
    row.discrete_sim = discrete.Evaluate(test);

    // Its prototype run: deploy the quantized weights over the air (the
    // discrete phases are exactly realizable; channel + sync still bite).
    core::TrainedModel model{
        nn::ComplexLinearModel(ds.train.dim, ds.num_classes),
        rf::Modulation::kQam256};
    model.network.mutable_weights() = discrete.QuantizedWeights();
    Rng ota_rng(103);
    row.discrete_proto = PrototypeAccuracy(model, surface,
                                           DefaultLinkConfig(7), ds.test,
                                           ota_rng);
  }

  // MetaAI: continuous training; simulation column uses the plain digital
  // model, prototype column the robust-trained model over the air.
  {
    // Simulation column: median of five training seeds. The smallest
    // dataset (CelebA-like, 220 train / 80 test samples) occasionally
    // lands in a bad minimum under the paper's fixed hyperparameters;
    // the median reports the typical run.
    // Each seed repeat self-seeds its generators, so the fan-out needs no
    // RNG threading — just ordered collection.
    const std::vector<std::uint64_t> sim_seeds = {104, 204, 304, 404, 504};
    const std::vector<double> sims =
        obs::DeterministicParallelMap(sim_seeds, [&](std::uint64_t seed) {
          Rng rng(seed);
          const auto plain = core::TrainModel(ds.train, {}, rng);
          return core::EvaluateDigital(plain, ds.test);
        });
    row.metaai_sim = Percentile(sims, 50.0);

    // Prototype column: mean over three robust-training / channel-noise
    // seed pairs (the 80-sample CelebA test split is otherwise jittery).
    const std::vector<std::uint64_t> proto_seeds = {105, 205, 305};
    const std::vector<double> protos =
        obs::DeterministicParallelMap(proto_seeds, [&](std::uint64_t seed) {
          Rng robust_rng(seed);
          const auto robust =
              core::TrainModel(ds.train, RobustTrainingOptions(), robust_rng);
          Rng ota_rng(seed + 1);
          return PrototypeAccuracy(robust, surface, DefaultLinkConfig(8),
                                   ds.test, ota_rng);
        });
    double proto_total = 0.0;
    for (const double p : protos) proto_total += p;
    row.metaai_proto = proto_total / 3.0;
  }
  return row;
}

void Run() {
  Table table("Table 1: Performance under different datasets (accuracy %)",
              {"Dataset", "Train#", "Test#", "Class#", "DeepCNN",
               "DiscreteNN sim", "DiscreteNN proto", "MetaAI sim",
               "MetaAI proto"});
  for (const auto& name : data::AllDatasetNames()) {
    const Row row = RunDataset(name);
    table.AddRow({row.dataset, std::to_string(row.train_n),
                  std::to_string(row.test_n), std::to_string(row.classes),
                  FormatPercent(row.cnn), FormatPercent(row.discrete_sim),
                  FormatPercent(row.discrete_proto),
                  FormatPercent(row.metaai_sim),
                  FormatPercent(row.metaai_proto)});
    std::fprintf(stderr, "[table1] %s done\n", row.dataset.c_str());
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("table1_overall");
  metaai::bench::Run();
  return 0;
}
