// Fleet: sharded surface cluster behind one front door vs a single
// overloaded shard.
//
// Eight edge tenants offer ~4.5k req/s of stressed traffic (Pareto
// heavy tails, diurnal waves, a flash crowd) against 8x8 front panels
// whose TDMA budget sustains ~3.6k req/s each. A single-shard fleet is
// ~1.25x oversubscribed: queues saturate, admission sheds load, and
// nearly every served request burns its latency SLO. The two-shard
// fleet bin-packs the same tenants 4+4 across shards (the per-shard
// controller budget_cap admits exactly four declared demands), so each
// shard runs at ~0.62 load and goodput under SLO recovers — the bench
// hard-gates the two-shard/single-shard goodput ratio at >= 1.8x.
//
// The determinism contract is gated too: the single-shard fleet must
// reproduce a bare serve::Runtime bit for bit (responses and telemetry
// exports), the two-shard exports must be byte-identical at 1/2/4/8
// worker threads, and a hot migration (routing flip at a virtual
// cutover, destination warmed through the shared mts::ConfigCache)
// must not perturb a single prediction. The shared cache collapses all
// tenant mapping solves across every arm into one coordinate-descent
// run (hits are pinned by the baseline).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

#include "common/table.h"
#include "fleet/fleet.h"
#include "mts/config_cache.h"
#include "mts/controller.h"
#include "mts/layer_graph.h"
#include "obs/alerts.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"
#include "serve/generator.h"
#include "serve/runtime.h"

namespace metaai::bench {
namespace {

constexpr std::size_t kPanelSide = 8;  // 8x8 panels -> 64 atoms
constexpr std::size_t kDim = kPanelSide * kPanelSide;
constexpr std::size_t kClasses = 4;
constexpr std::size_t kTenants = 8;
constexpr double kRateHz = 565.0;
constexpr double kDurationS = 24.0;
/// Requests replayed in the thread-sweep and migration arms.
constexpr std::size_t kPrefix = 8000;

/// Class-center blobs in [0, 1]^64: all the data:: factories are
/// 256-dimensional (16x16), so the fleet's 8x8 panels get their own
/// synthetic split. Train and test share centers.
struct SynthData {
  nn::RealDataset train;
  nn::RealDataset test;
};

SynthData MakeSynthData(Rng& rng) {
  std::vector<std::vector<double>> centers(kClasses,
                                           std::vector<double>(kDim));
  for (auto& center : centers) {
    for (double& v : center) v = rng.Uniform(0.15, 0.85);
  }
  const auto fill = [&](nn::RealDataset& ds, std::size_t per_class) {
    ds.num_classes = kClasses;
    ds.dim = kDim;
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        std::vector<double> f(kDim);
        for (std::size_t d = 0; d < kDim; ++d) {
          f[d] = std::clamp(centers[c][d] + 0.18 * rng.Normal(), 0.0, 1.0);
        }
        ds.features.push_back(std::move(f));
        ds.labels.push_back(static_cast<int>(c));
      }
    }
    ds.Validate();
  };
  SynthData data;
  fill(data.train, 60);
  fill(data.test, 40);
  return data;
}

mts::MetasurfaceSpec PanelSpec() {
  mts::MetasurfaceSpec spec;
  spec.rows = kPanelSide;
  spec.cols = kPanelSide;
  return spec;
}

std::vector<fleet::TenantSpec> MakeTenants(const core::TrainedModel& model) {
  std::vector<fleet::TenantSpec> tenants;
  for (std::size_t t = 0; t < kTenants; ++t) {
    sim::OtaLinkConfig link =
        DefaultLinkConfig(static_cast<std::uint64_t>(t) + 1);
    serve::ClientSpec client{
        .name = "tenant" + std::to_string(t),
        .model = model,
        .link = link,
        .deployment = {},
        // Staggered 8..15 ms end-to-end targets: generous against the
        // ~0.3 ms airtime + frame batching, hopeless against a
        // saturated queue.
        .slo_latency_s = 0.008 + 0.001 * static_cast<double>(t)};
    tenants.push_back(
        {.client = std::move(client), .arrival_rate_hz = kRateHz});
  }
  return tenants;
}

fleet::ShardSpec MakeShard(const std::string& name, double budget_cap) {
  return {.name = name,
          .graph = mts::LayerGraph::FromSurface(mts::Metasurface{PanelSpec()}),
          .band_hz = 5.25e9,
          .scheduler = {},
          .budget_cap = budget_cap};
}

fleet::Fleet MakeFleet(const core::TrainedModel& model, std::size_t shards,
                       double budget_cap,
                       const std::shared_ptr<mts::ConfigCache>& cache,
                       std::vector<fleet::Migration> migrations = {}) {
  std::vector<fleet::ShardSpec> specs;
  for (std::size_t s = 0; s < shards; ++s) {
    specs.push_back(MakeShard("shard" + std::to_string(s), budget_cap));
  }
  fleet::FleetOptions options;
  options.cache = cache;
  options.migrations = std::move(migrations);
  return fleet::Fleet::TryCreate(std::move(specs), MakeTenants(model),
                                 std::move(options))
      .value();
}

std::vector<int> Predictions(std::span<const serve::ServeResponse> responses) {
  std::vector<int> predicted;
  predicted.reserve(responses.size());
  for (const serve::ServeResponse& response : responses) {
    predicted.push_back(response.predicted);
  }
  return predicted;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run(BenchReport& report) {
  // Counters/gauges/histograms still flow into the report, but span
  // recording is off: this bench serves ~7e5 requests across its arms
  // and per-request wall spans would dominate the report file.
  const obs::ScopedTracer no_spans(nullptr);
  Rng data_rng(171);
  const SynthData data = MakeSynthData(data_rng);
  Rng train_rng(172);
  const core::TrainedModel model =
      core::TrainModel(data.train, RobustTrainingOptions(), train_rng);
  const sim::SyncModel sync = DeploymentSyncModel();

  // Per-tenant declared demand in controller patterns/s and the aligned
  // 64-atom controller's ceiling: budget caps are sized from these so
  // FFD admits exactly 4 tenants per shard in the two-shard arm and all
  // 8 on the lone overloaded shard.
  const double demand_hz = kRateHz * 2.0 * static_cast<double>(kDim) *
                           static_cast<double>(kClasses);
  mts::ControllerConfig aligned;
  aligned.num_atoms = kDim;
  const double max_rate = mts::Controller(aligned).MaxSwitchRate();
  const double cap_two = 4.5 * demand_hz / max_rate;
  const double cap_one = std::min(1.0, 9.0 * demand_hz / max_rate);
  const double cap_migration = 5.5 * demand_hz / max_rate;
  report.Headline("controller_max_switch_rate_hz", max_rate);
  report.Headline("tenant_demand_patterns_hz", demand_hz);

  // Stressed open-loop trace: heavy-tailed tenants, diurnal waves, one
  // flash crowd, two plain Poisson controls.
  serve::WorkloadSpec spec;
  spec.duration_s = kDurationS;
  for (std::size_t t = 0; t < kTenants; ++t) {
    serve::TenantWorkload tenant{.arrival_rate_hz = kRateHz,
                                 .samples = &data.test};
    if (t < 3) {
      tenant.pareto_shape = 1.8;
    } else if (t < 6) {
      tenant.diurnal_amplitude = 0.4;
      tenant.diurnal_period_s = kDurationS / 2.0;
    } else if (t == 6) {
      tenant.flash_crowds = {{.start_s = 0.45 * kDurationS,
                              .duration_s = 0.05 * kDurationS,
                              .multiplier = 2.5}};
    }
    spec.tenants.push_back(std::move(tenant));
  }
  Rng workload_rng(173);
  const std::vector<serve::ServeRequest> requests =
      serve::GenerateWorkload(spec, workload_rng).value();
  report.Headline("requests", static_cast<double>(requests.size()));

  // Build the two-shard fleet first: its first tenant pays the single
  // mapping solve, so every later construction — including the bare
  // runtime the bitwise gate compares against — is a pure cache hit and
  // the request logs carry identical mapping provenance.
  const auto cache = std::make_shared<mts::ConfigCache>();
  const fleet::Fleet sharded = MakeFleet(model, 2, cap_two, cache);
  const fleet::Fleet single = MakeFleet(model, 1, cap_one, cache);

  // Placement: the two-shard packing must actually split the tenants.
  std::vector<std::size_t> shard_tenants(sharded.num_shards(), 0);
  Table placement("Fleet: two-shard tenant placement",
                  {"Tenant", "Shard", "Demand Mpat/s"});
  for (std::size_t t = 0; t < sharded.num_tenants(); ++t) {
    const fleet::TenantPlacement& p = sharded.placement()[t];
    ++shard_tenants[p.shard];
    placement.AddRow({sharded.tenant_name(t), sharded.shard_name(p.shard),
                      FormatDouble(p.demand_patterns_hz / 1e6, 3)});
  }
  placement.Print(std::cout);
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    report.Headline("placement_shard" + std::to_string(s) + "_tenants",
                    static_cast<double>(shard_tenants[s]));
    if (shard_tenants[s] == 0) {
      std::fprintf(stderr,
                   "FAILED: two-shard packing left shard %zu empty\n", s);
      return 1;
    }
  }

  Table table("Fleet: goodput under SLO, one overloaded shard vs two",
              {"Config", "Wall s", "Served", "Rejected", "p50 ms", "p99 ms",
               "SLO within", "Goodput req/s"});
  const auto run_arm = [&](const fleet::Fleet& cluster,
                           const std::string& label,
                           const std::string& key) {
    Rng rng(174);
    const auto start = std::chrono::steady_clock::now();
    fleet::FleetResult result = cluster.Run(requests, sync, rng);
    const double wall_s = Seconds(start);
    const fleet::FleetStats& s = result.stats;
    table.AddRow({label, FormatDouble(wall_s, 2), std::to_string(s.served),
                  std::to_string(s.rejected()),
                  FormatDouble(s.latency_p50_s * 1e3, 2),
                  FormatDouble(s.latency_p99_s * 1e3, 2),
                  std::to_string(s.slo_within),
                  FormatDouble(s.goodput_slo_rps, 1)});
    report.Headline("served_" + key, static_cast<double>(s.served));
    report.Headline("rejected_" + key, static_cast<double>(s.rejected()));
    report.Headline("slo_within_" + key, static_cast<double>(s.slo_within));
    report.Headline("slo_violations_" + key,
                    static_cast<double>(s.slo_violations));
    report.Headline("latency_p50_ms_" + key, s.latency_p50_s * 1e3);
    report.Headline("latency_p99_ms_" + key, s.latency_p99_s * 1e3);
    report.Headline("latency_p999_ms_" + key, s.latency_p999_s * 1e3);
    report.Headline("goodput_slo_rps_" + key, s.goodput_slo_rps);
    report.Headline("wall_s_" + key, wall_s);
    return result;
  };

  const fleet::FleetResult single_result =
      run_arm(single, "1 shard (overloaded)", "single");
  const fleet::FleetResult sharded_result =
      run_arm(sharded, "2 shards", "sharded");
  table.Print(std::cout);
  report.Headline("alerts_single",
                  static_cast<double>(single_result.stats.alerts));
  report.Headline("alerts_sharded",
                  static_cast<double>(sharded_result.stats.alerts));

  const double ratio = sharded_result.stats.goodput_slo_rps /
                       single_result.stats.goodput_slo_rps;
  report.Headline("goodput_ratio_sharded_vs_single", ratio);
  std::cout << "(two shards vs one under the same trace: "
            << FormatDouble(ratio, 2) << "x goodput under SLO)\n";
  if (ratio < 1.8) {
    std::fprintf(stderr,
                 "FAILED: two-shard goodput ratio %.2fx below the 1.8x gate\n",
                 ratio);
    return 1;
  }

  // Gate: the single-shard fleet is the bare runtime, bit for bit —
  // same responses, same telemetry bytes.
  {
    std::vector<serve::ClientSpec> clients;
    for (fleet::TenantSpec& tenant : MakeTenants(model)) {
      clients.push_back(std::move(tenant.client));
    }
    serve::RuntimeOptions options;
    options.cache = cache;
    const serve::Runtime bare =
        serve::Runtime::TryCreate(
            mts::LayerGraph::FromSurface(mts::Metasurface{PanelSpec()}),
            std::move(clients), std::move(options))
            .value();
    Rng bare_rng(174);
    const serve::ServeResult direct = bare.Run(requests, sync, bare_rng);
    const bool identical =
        Predictions(single_result.responses) ==
            Predictions(direct.responses) &&
        single_result.stats.served == direct.stats.served &&
        single_result.stats.latency_p999_s == direct.stats.latency_p999_s &&
        obs::ToRequestsJsonl(single_result.request_log) ==
            obs::ToRequestsJsonl(direct.request_log) &&
        obs::health::ToAlertsJsonl(single_result.alerts) ==
            obs::health::ToAlertsJsonl(direct.alerts);
    if (!identical) {
      std::fprintf(stderr,
                   "FAILED: single-shard fleet diverges from the bare "
                   "runtime\n");
      return 1;
    }
  }

  // Thread sweep on a prefix of the trace: the two-shard fleet's merged
  // exports must be byte-identical at every worker count.
  const std::span<const serve::ServeRequest> prefix(
      requests.data(), std::min(kPrefix, requests.size()));
  {
    std::vector<int> reference;
    std::string reference_requests;
    std::string reference_timeseries;
    std::string reference_alerts;
    for (const int threads : {1, 2, 4, 8}) {
      const par::ScopedThreadCount scoped(threads);
      Rng rng(175);
      const fleet::FleetResult result = sharded.Run(prefix, sync, rng);
      const std::string requests_jsonl =
          obs::ToRequestsJsonl(result.request_log);
      const std::string timeseries_jsonl =
          obs::ToTimeSeriesJsonl(result.timeseries);
      const std::string alerts_jsonl =
          obs::health::ToAlertsJsonl(result.alerts);
      if (threads == 1) {
        reference = Predictions(result.responses);
        reference_requests = requests_jsonl;
        reference_timeseries = timeseries_jsonl;
        reference_alerts = alerts_jsonl;
        if (const char* dir = std::getenv("METAAI_BENCH_OUT")) {
          obs::WriteRequestsFile(result.request_log,
                                 std::string(dir) + "/REQUESTS_fleet.jsonl");
          obs::WriteTimeSeriesFile(
              result.timeseries,
              std::string(dir) + "/TIMESERIES_fleet.jsonl");
          obs::health::WriteAlertsFile(
              result.alerts, std::string(dir) + "/ALERTS_fleet.jsonl");
        }
      } else if (Predictions(result.responses) != reference ||
                 requests_jsonl != reference_requests ||
                 timeseries_jsonl != reference_timeseries ||
                 alerts_jsonl != reference_alerts) {
        std::fprintf(stderr,
                     "FAILED: fleet exports at %d threads diverge from "
                     "serial\n",
                     threads);
        return 1;
      }
    }
  }

  // Hot-migration gate on the same prefix: flipping tenant 0 to the
  // other shard mid-trace (destination warmed through the shared cache)
  // must preserve every prediction bit for bit.
  {
    const double cutover_s = prefix[prefix.size() / 2].arrival_s;
    const fleet::Fleet stay = MakeFleet(model, 2, cap_migration, cache);
    const fleet::Fleet move =
        MakeFleet(model, 2, cap_migration, cache,
                  {{.tenant = 0, .to_shard = 1, .cutover_s = cutover_s}});
    Rng stay_rng(176);
    Rng move_rng(176);
    const fleet::FleetResult before = stay.Run(prefix, sync, stay_rng);
    const fleet::FleetResult after = move.Run(prefix, sync, move_rng);
    report.Headline("migration_cutover_s", cutover_s);
    report.Headline(
        "migration_dest_served",
        static_cast<double>(after.stats.shards[1].stats.served -
                            before.stats.shards[1].stats.served));
    if (Predictions(before.responses) != Predictions(after.responses)) {
      std::fprintf(stderr,
                   "FAILED: hot migration perturbed predictions\n");
      return 1;
    }
    if (after.stats.shards[1].stats.served <=
        before.stats.shards[1].stats.served) {
      std::fprintf(stderr,
                   "FAILED: migration destination served no extra traffic\n");
      return 1;
    }
  }

  // Every arm deploys the same model on identical panels: the shared
  // cache collapses all mapping work into one solve.
  const mts::ConfigCache::Stats cache_stats = cache->stats();
  report.Headline("cache_hits", static_cast<double>(cache_stats.hits));
  report.Headline("cache_misses", static_cast<double>(cache_stats.misses));
  return 0;
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fleet");
  return metaai::bench::Run(report);
}
