// Fig 7: recognition accuracy vs number of meta-atoms.
//
// Two effects shrink accuracy at low atom counts: the discrete weight
// lattice gets coarser (Fig 6 / Appendix A.2), and the reflected aperture
// shrinks — received power scales with M^2, so small panels also lose
// SNR. Each dataset's digitally trained weights are mapped onto panels of
// increasing size and evaluated over the air (perfect sync, default
// link). Accuracy climbs with M and saturates beyond 256 atoms — the
// basis for the prototype's 16x16 choice.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const std::size_t sides[] = {4, 6, 8, 12, 16, 24, 32};
  std::vector<std::string> headers{"Dataset"};
  for (const std::size_t side : sides) {
    headers.push_back("M=" + std::to_string(side * side));
  }
  Table table("Fig 7: Recognition accuracy (%) vs meta-atom count", headers);

  for (const auto& name : data::AllDatasetNames()) {
    const data::Dataset ds = data::MakeByName(name);
    Rng rng(7);
    const auto model = core::TrainModel(ds.train, {}, rng);

    std::vector<std::string> row{ds.name};
    for (const std::size_t side : sides) {
      mts::MetasurfaceSpec spec;
      spec.rows = side;
      spec.cols = side;
      const mts::Metasurface surface{spec};
      sim::OtaLinkConfig config = DefaultLinkConfig();
      // Noise floor set so the 256-atom panel operates with comfortable
      // but finite SNR; smaller panels (aperture ~ M^2) become noise
      // limited, which is what bends the curve at low atom counts.
      config.budget.noise_floor_dbm = -47.0;
      core::Deployment deployment(model, surface, config);
      Rng eval_rng(71);
      const double acc = deployment.EvaluateAccuracyAtOffset(
          ds.test, /*mts_clock_offset_us=*/0.0, eval_rng, 100);
      row.push_back(FormatPercent(acc));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig7] %s done\n", ds.name.c_str());
  }
  table.Print(std::cout);
  std::cout << "(Shape check: accuracy rises with M and saturates beyond"
               " 256 atoms.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig7_meta_atoms");
  metaai::bench::Run();
  return 0;
}
