// Ablation: receiver mobility and recalibration (§7 "Device Mobility").
//
// The pre-solved configuration-to-weight mapping assumes the receiver's
// emergence angle. This bench moves the receiver away from the calibrated
// 40-degree bearing and measures accuracy (a) with the stale mapping and
// (b) after the beam-scan + re-solve recalibration pipeline, then reports
// the recalibration latency and the maximum receiver angular speed the
// loop can track — the "race" the paper describes. Headline metrics are
// gated against bench/baselines/ablation_mobility.json by
// tools/run_benches.sh (via metaai_bench_diff).
#include "bench_util.h"

#include "common/table.h"
#include "core/recalibration.h"
#include "data/encoding.h"

namespace metaai::bench {
namespace {

void Run(BenchReport& report) {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(84);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  // Calibrated at the default 40-degree bearing.
  const sim::OtaLinkConfig calibrated = DefaultLinkConfig(8400);
  const core::Deployment stale(model, surface, calibrated);

  Table table("Ablation: receiver mobility (accuracy %)",
              {"True Rx bearing (deg)", "Stale mapping",
               "After recalibration"});
  core::RecalibrationReport last_report;
  double stale_at_25 = 0.0;
  double recal_at_25 = 0.0;
  for (const double true_deg : {40.0, 35.0, 30.0, 25.0, 15.0}) {
    sim::OtaLinkConfig true_link = calibrated;
    true_link.geometry.rx_angle_rad = rf::DegToRad(true_deg);

    // Stale: schedules solved for 40 deg played over the true channel.
    // Deploy on the true link but with the 40-deg steering assumption:
    // reuse the stale deployment's schedules through a link at the true
    // geometry.
    sim::OtaLink true_ota(surface, true_link);
    Rng eval_rng(841);
    std::size_t correct = 0;
    constexpr std::size_t kSamples = 100;
    const sim::SyncModel sync = DeploymentSyncModel();
    for (std::size_t i = 0; i < kSamples; ++i) {
      const auto symbols =
          data::EncodeSample(ds.test.features[i], model.modulation);
      std::vector<double> scores(ds.num_classes, 0.0);
      const double offset = sync.SampleOffsetUs(eval_rng);
      for (std::size_t r = 0; r < stale.schedules().rounds.size(); ++r) {
        const auto z = true_ota.TransmitSequence(
            symbols, stale.schedules().rounds[r], offset, eval_rng);
        sim::Complex acc{0.0, 0.0};
        for (std::size_t s = 0; s < z.cols(); ++s) acc += z(0, s);
        scores[static_cast<std::size_t>(
            stale.schedules().outputs[r][0])] = std::abs(acc);
      }
      const auto best = static_cast<int>(std::distance(
          scores.begin(), std::max_element(scores.begin(), scores.end())));
      correct += (best == ds.test.labels[i]);
    }
    const double stale_acc =
        static_cast<double>(correct) / static_cast<double>(kSamples);

    // Recalibrated: beam scan for the new bearing, re-solve, evaluate.
    auto result =
        core::RecalibrateForReceiver(model, surface, calibrated, true_link);
    last_report = result.report;
    Rng recal_rng(842);
    const double recal_acc = result.deployment.EvaluateAccuracy(
        ds.test, DeploymentSyncModel(), recal_rng, 100);

    if (true_deg == 25.0) {
      stale_at_25 = stale_acc;
      recal_at_25 = recal_acc;
    }
    table.AddRow({FormatDouble(true_deg, 0), FormatPercent(stale_acc),
                  FormatPercent(recal_acc)});
    std::fprintf(stderr, "[ablation_mobility] %.0f deg done\n", true_deg);
  }
  report.Headline("stale_accuracy_at_25deg", stale_at_25);
  report.Headline("recalibrated_accuracy_at_25deg", recal_at_25);
  report.Headline("recalibration_latency_ms",
                  last_report.total_latency_s * 1e3);
  report.Headline(
      "trackable_angular_speed_deg_s",
      rf::RadToDeg(last_report.max_trackable_angular_speed_rad_s));
  table.Print(std::cout);
  std::cout << "Recalibration latency: "
            << FormatDouble(last_report.scan_latency_s * 1e3, 2)
            << " ms scan + "
            << FormatDouble(last_report.solve_latency_s * 1e3, 2)
            << " ms re-solve = "
            << FormatDouble(last_report.total_latency_s * 1e3, 2)
            << " ms total; trackable receiver angular speed ~ "
            << FormatDouble(
                   rf::RadToDeg(
                       last_report.max_trackable_angular_speed_rad_s),
                   1)
            << " deg/s.\n";
  std::cout << "(Finding: a few degrees of receiver motion already erode"
               " the stale mapping; the\n beam-scan + re-solve loop"
               " restores accuracy, and its latency bounds the mobility\n"
               " the system can follow — the race described in §7.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_mobility");
  metaai::bench::Run(report);
  return 0;
}
