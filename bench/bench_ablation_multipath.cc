// Ablation: the three multipath strategies of §3.2.
//
//  * none            — the environment path adds directly onto the weight;
//  * Eqn 8 (static)  — estimate H_e once (MTS off) and solve for
//                      (H_des - H_e): perfect in a frozen environment,
//                      broken the moment the environment drifts;
//  * flip scheme     — zero-mean pulses + mid-symbol flip: no estimation,
//                      cancels anything static *within a symbol*, so it
//                      survives environment drift (the paper's choice).
//
// Evaluated in a static office and in the same office with a walking
// interferer (whose extra path drifts between symbols).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

double Evaluate(const core::TrainedModel& model, bool cancellation,
                bool subtract_env, sim::InterfererRegion interferer,
                const nn::RealDataset& test) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig config = DefaultLinkConfig(8100);
  config.multipath_cancellation = cancellation;
  config.environment.interferer = interferer;
  core::DeploymentOptions options;
  options.mapping.subtract_environment = subtract_env;
  core::Deployment deployment(model, surface, config, options);
  Rng rng(81);
  return deployment.EvaluateAccuracyAtOffset(test, 0.0, rng, 150);
}

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(811);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);

  Table table("Ablation: multipath strategies (accuracy %)",
              {"Strategy", "Static environment", "Drifting interferer"});
  struct Strategy {
    const char* label;
    bool cancellation;
    bool subtract_env;
  };
  for (const Strategy& s :
       {Strategy{"none", false, false},
        Strategy{"Eqn 8 static estimate", false, true},
        Strategy{"zero-mean flip (paper)", true, false}}) {
    const double stationary = Evaluate(model, s.cancellation, s.subtract_env,
                                       sim::InterfererRegion::kNone,
                                       ds.test);
    const double dynamic = Evaluate(model, s.cancellation, s.subtract_env,
                                    sim::InterfererRegion::kR2, ds.test);
    table.AddRow({s.label, FormatPercent(stationary),
                  FormatPercent(dynamic)});
    std::fprintf(stderr, "[ablation_multipath] %s done\n", s.label);
  }
  table.Print(std::cout);
  std::cout << "(Finding: the static Eqn-8 estimate matches the flip scheme"
               " only while the\n environment is frozen; under a drifting"
               " interferer its estimate goes stale while\n the flip scheme"
               " — needing no estimate at all — is unaffected.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_multipath");
  metaai::bench::Run();
  return 0;
}
