// Ablation: the configuration solver's budget and headroom.
//
// Two design knobs of the weight mapper (§3.2, Eqn 7):
//  * coordinate-descent sweep budget — how many passes over the 256 atoms
//    each (output, symbol) solve gets;
//  * target fraction — how much of the panel's reachable magnitude the
//    largest weight is scaled to (headroom against quantization error).
// We report the mean relative residual and the end-to-end over-the-air
// accuracy for each setting.
#include "bench_util.h"

#include "common/table.h"
#include "mts/config_cache.h"

namespace metaai::bench {
namespace {

/// Warm-start ablation: a fine-tuned near-duplicate of a mapped model is
/// re-solved (a) cold, from scratch, and (b) warm, seeded from the
/// nearest cached schedule with the early-exit threshold active. The
/// sweep counts are deterministic for a fixed dispatch level, so the
/// baseline gates them exactly; the bench itself hard-gates warm < cold.
int RunWarmStartArm(BenchReport& report) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLinkConfig());
  Rng rng(83);
  ComplexMatrix weights(10, 64);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c = 0; c < weights.cols(); ++c) {
      weights(r, c) = rng.UnitPhasor() * (0.5 + rng.Uniform());
    }
  }
  auto tuned = weights;
  for (std::size_t r = 0; r < tuned.rows(); ++r) {
    for (std::size_t c = 0; c < tuned.cols(); ++c) {
      tuned(r, c) += rng.ComplexNormal(1e-5);
    }
  }

  core::MappingOptions options{.scheme = core::MappingScheme::kSequential};
  options.warm_start_distance = 0.1;
  mts::ConfigCache cache;
  options.cache = &cache;
  core::MapWeights(weights, link, options);  // seeds the cache

  const auto warm = core::MapWeights(tuned, link, options);
  const auto cold = core::MapWeights(
      tuned, link, {.scheme = core::MappingScheme::kSequential});

  Table table("Ablation: warm-started incremental solve",
              {"Arm", "Total sweeps", "Mean relative residual"});
  table.AddRow({"cold", std::to_string(cold.total_sweeps),
                FormatDouble(cold.mean_relative_residual, 4)});
  table.AddRow({"warm", std::to_string(warm.total_sweeps),
                FormatDouble(warm.mean_relative_residual, 4)});
  table.Print(std::cout);
  report.Headline("warm_start_cold_sweeps",
                  static_cast<double>(cold.total_sweeps));
  report.Headline("warm_start_warm_sweeps",
                  static_cast<double>(warm.total_sweeps));
  report.Headline("warm_start_residual_delta",
                  warm.mean_relative_residual - cold.mean_relative_residual);
  if (!warm.warm_started || warm.total_sweeps >= cold.total_sweeps) {
    std::fprintf(stderr,
                 "FAILED: warm start did not reduce sweeps (%ld warm vs %ld "
                 "cold)\n",
                 warm.total_sweeps, cold.total_sweeps);
    return 1;
  }
  std::cout << "(warm start: " << cold.total_sweeps << " -> "
            << warm.total_sweeps << " sweeps on a near-duplicate model)\n";
  return 0;
}

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(82);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table sweeps("Ablation: solver sweep budget",
               {"Max sweeps", "Mean relative residual", "OTA accuracy"});
  for (const int max_sweeps : {1, 2, 4, 8}) {
    core::DeploymentOptions options;
    options.mapping.solver.max_sweeps = max_sweeps;
    core::Deployment deployment(model, surface, DefaultLinkConfig(),
                                options);
    Rng eval_rng(821);
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 120);
    sweeps.AddRow({std::to_string(max_sweeps),
                   FormatDouble(deployment.schedules().mean_relative_residual,
                                4),
                   FormatPercent(acc)});
  }
  sweeps.Print(std::cout);

  Table fractions("Ablation: target magnitude fraction",
                  {"Fraction", "Mean relative residual", "OTA accuracy"});
  for (const double fraction : {0.3, 0.6, 0.85, 1.0}) {
    core::DeploymentOptions options;
    options.mapping.target_fraction = fraction;
    core::Deployment deployment(model, surface, DefaultLinkConfig(),
                                options);
    Rng eval_rng(822);
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 120);
    fractions.AddRow({FormatDouble(fraction, 2),
                      FormatDouble(
                          deployment.schedules().mean_relative_residual, 4),
                      FormatPercent(acc)});
  }
  fractions.Print(std::cout);
  std::cout << "(Finding: the solver converges within a couple of sweeps;"
               " accuracy is flat across\n a broad headroom range — the"
               " 2-bit lattice at 256 atoms is dense enough that the\n"
               " mapping is never the bottleneck, matching Appendix A.2.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_solver");
  metaai::bench::Run();
  return metaai::bench::RunWarmStartArm(report);
}
