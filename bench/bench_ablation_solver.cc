// Ablation: the configuration solver's budget and headroom.
//
// Two design knobs of the weight mapper (§3.2, Eqn 7):
//  * coordinate-descent sweep budget — how many passes over the 256 atoms
//    each (output, symbol) solve gets;
//  * target fraction — how much of the panel's reachable magnitude the
//    largest weight is scaled to (headroom against quantization error).
// We report the mean relative residual and the end-to-end over-the-air
// accuracy for each setting.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(82);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table sweeps("Ablation: solver sweep budget",
               {"Max sweeps", "Mean relative residual", "OTA accuracy"});
  for (const int max_sweeps : {1, 2, 4, 8}) {
    core::DeploymentOptions options;
    options.mapping.solver.max_sweeps = max_sweeps;
    core::Deployment deployment(model, surface, DefaultLinkConfig(),
                                options);
    Rng eval_rng(821);
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 120);
    sweeps.AddRow({std::to_string(max_sweeps),
                   FormatDouble(deployment.schedules().mean_relative_residual,
                                4),
                   FormatPercent(acc)});
  }
  sweeps.Print(std::cout);

  Table fractions("Ablation: target magnitude fraction",
                  {"Fraction", "Mean relative residual", "OTA accuracy"});
  for (const double fraction : {0.3, 0.6, 0.85, 1.0}) {
    core::DeploymentOptions options;
    options.mapping.target_fraction = fraction;
    core::Deployment deployment(model, surface, DefaultLinkConfig(),
                                options);
    Rng eval_rng(822);
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 120);
    fractions.AddRow({FormatDouble(fraction, 2),
                      FormatDouble(
                          deployment.schedules().mean_relative_residual, 4),
                      FormatPercent(acc)});
  }
  fractions.Print(std::cout);
  std::cout << "(Finding: the solver converges within a couple of sweeps;"
               " accuracy is flat across\n a broad headroom range — the"
               " 2-bit lattice at 256 atoms is dense enough that the\n"
               " mapping is never the bottleneck, matching Appendix A.2.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_solver");
  metaai::bench::Run();
  return 0;
}
