// Fig 30 (Appendix A.2): Weight Distribution Density vs meta-atom count.
//
// WDD measures how completely the discrete weights reachable by an M-atom
// 2-bit surface cover the normalized complex weight disk within a mapping
// tolerance (Eqn 19). The curve rises sharply and saturates at M = 256 —
// the hardware-agnostic prediction behind the prototype's 16x16 size.
#include "bench_util.h"

#include "common/table.h"
#include "mts/wdd.h"

namespace metaai::bench {
namespace {

void Run() {
  Table table("Fig 30: WDD vs meta-atom count", {"Meta-atoms", "WDD"});
  for (const std::size_t atoms :
       {16u, 36u, 64u, 100u, 144u, 196u, 256u, 400u, 576u, 1024u}) {
    table.AddRow({std::to_string(atoms),
                  FormatDouble(mts::WeightDistributionDensity(atoms), 3)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: sharp rise, saturation at 256 atoms.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig30_wdd");
  metaai::bench::Run();
  return 0;
}
