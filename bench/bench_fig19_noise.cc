// Fig 19: performance under noise, with and without the noise-alleviation
// training scheme (§3.5.2).
//
// Transmit power is swept from 5 to 30 dBm at 20 receiver locations; each
// (power, location) pair contributes one accuracy measurement. The noise-
// aware model is trained with hardware noise folded into the input
// (Eqn 14) and output noise (Eqn 13); the baseline only has the CDFA sync
// injector. We report the accuracy CDF and the 80th-percentile accuracy
// the paper quotes (80.48% -> 87.92%).
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"

namespace metaai::bench {
namespace {

struct SweepResult {
  std::vector<double> accuracies;           // all power x location points
  std::vector<double> mean_per_power;       // indexed by power step
};

SweepResult Sweep(const core::TrainedModel& model) {
  const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 1, .test_per_class = 50});
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  SweepResult result;
  Rng rng(19);
  for (int power_dbm = 5; power_dbm <= 30; power_dbm += 5) {
    const std::vector<double> at_power =
        ParallelTrials(20, rng, [&](Rng& trial_rng, std::size_t i) {
          sim::OtaLinkConfig config = DefaultLinkConfig(1900 + (i + 1));
          config.budget.tx_power_dbm = power_dbm;
          config.budget.noise_floor_dbm = -46.0;  // noise-limited regime
          config.mts_phase_noise_std = 0.12;
          return PrototypeAccuracy(model, surface, config, ds.test, trial_rng,
                                   40);
        });
    result.mean_per_power.push_back(Mean(at_power));
    result.accuracies.insert(result.accuracies.end(), at_power.begin(),
                             at_power.end());
  }
  return result;
}

void Run() {
  const data::Dataset ds = data::MakeMnistLike();

  Rng rng_base(1);
  core::TrainingOptions baseline_options = RobustTrainingOptions();
  baseline_options.input_noise_variance = 0.0;  // sync injector only
  const auto baseline = core::TrainModel(ds.train, baseline_options,
                                         rng_base);

  Rng rng_noise(1);
  core::TrainingOptions noise_options = RobustTrainingOptions();
  noise_options.input_noise_variance = 0.5;   // hardware noise (Eqn 14)
  noise_options.output_noise_variance = 0.0;
  const auto noise_aware = core::TrainModel(ds.train, noise_options,
                                            rng_noise);

  const auto base = Sweep(baseline);
  std::fprintf(stderr, "[fig19] baseline sweep done\n");
  const auto aware = Sweep(noise_aware);
  std::fprintf(stderr, "[fig19] noise-aware sweep done\n");

  Table per_power("Fig 19 (detail): mean accuracy per transmit power",
                  {"Tx power (dBm)", "w/o alleviation", "with alleviation"});
  for (std::size_t i = 0; i < base.mean_per_power.size(); ++i) {
    per_power.AddRow({std::to_string(5 + 5 * static_cast<int>(i)),
                      FormatPercent(base.mean_per_power[i]),
                      FormatPercent(aware.mean_per_power[i])});
  }
  per_power.Print(std::cout);

  const auto& acc_base = base.accuracies;
  const auto& acc_aware = aware.accuracies;
  Table table("Fig 19: Accuracy CDF under noise (120 power x location "
              "measurements)",
              {"Percentile", "w/o alleviation", "with alleviation"});
  const std::vector<double> ps = {10.0, 20.0, 40.0, 60.0, 80.0, 100.0};
  const std::vector<double> base_ps = Percentiles(acc_base, ps);
  const std::vector<double> aware_ps = Percentiles(acc_aware, ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    table.AddRow({FormatDouble(ps[i], 0), FormatPercent(base_ps[i]),
                  FormatPercent(aware_ps[i])});
  }
  table.Print(std::cout);
  std::cout << "Upper-percentile accuracy (CDF 60): "
            << FormatPercent(Percentile(acc_base, 60.0)) << "% -> "
            << FormatPercent(Percentile(acc_aware, 60.0))
            << "% (paper quotes its 80th-percentile point as 80.48% ->"
               " 87.92%).\n"
            << "(Shape check: the alleviation scheme lifts accuracy across"
               " the noise-limited\n power range without sacrificing the"
               " high-SNR regime.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig19_noise");
  metaai::bench::Run();
  return 0;
}
