// Ablation: hardware faults vs graceful degradation (metaai::fault).
//
// Sweeps the fraction of stuck meta-atoms on top of a fixed aging-drift
// background and reports, per operating point:
//  * how many stuck atoms the over-the-air toggle diagnosis detects,
//  * the WDD aperture-health ratio of the surviving aperture,
//  * the degraded accuracy with NO mitigation (the solver still targets
//    the idealized full aperture), and
//  * the recovered accuracy after the fault-aware re-solve (stuck atoms
//    masked out of coordinate descent, targets solved against the
//    measured per-atom steering).
// The headline metric is the fraction of the lost accuracy the re-solve
// recovers at the 10% stuck point — the ISSUE acceptance threshold is
// one half.
//
// A second, closed-loop arm exercises the online health pipeline
// (obs/health + obs/alerts): each frame's probe records (EVM plus the
// label-free soft-decision margin) stream through an AlertEngine via
// the probe adapter, faults are injected at a known frame, and the
// bench reports how many frames the drift detectors need to raise the
// watchdog-class alert — plus the recovered accuracy from the
// alert-driven re-solve (core::RunFaultWatchdogOnAlert) and the
// false-alert count of an identically-configured clean stream (gated
// at zero).
//
// Every stage is deterministic for any METAAI_THREADS: training and the
// mapper fan out via obs::DeterministicParallelFor, and the diagnosis
// probes consume a single sequential Rng stream.
#include <optional>

#include "bench_util.h"

#include "common/table.h"
#include "fault/injector.h"
#include "obs/alerts.h"

namespace metaai::bench {
namespace {

// Diagnosis integration length. One atom's toggle sits ~48 dB below the
// 256-atom aggregate, so the probes integrate longer than the default.
constexpr std::size_t kProbeSymbols = 128;
constexpr std::size_t kEvalSamples = 120;

// Closed-loop arm: frames of one inference each on a 1 kHz virtual
// frame clock. The fault lands after the drift detectors' warmup (the
// default CUSUM warmup is 32 observations).
constexpr std::size_t kFaultFrame = 48;
constexpr std::size_t kMaxFrames = 192;
constexpr double kFrameS = 1e-3;

// Rules for the streaming arm. EVM carries the fault signature here: a
// stuck diode distorts every transmitted constellation, so the per-
// transmission EVM probe shifts by hundreds of warmup stddevs the frame
// the fault lands, while the per-sample demod margin barely moves at
// 10% stuck (it only collapses once the aperture is mostly gone). The
// margin still streams through the engine's HealthMonitor as the
// accuracy proxy — it just has no alert rule bound at this operating
// point, because a bimodal per-sample margin over a 78%-accurate model
// fires any tight rule on a perfectly healthy link.
std::vector<obs::health::AlertRule> FaultStreamRules() {
  using namespace obs::health;
  std::vector<AlertRule> rules;
  rules.push_back({.name = "evm.ceiling",
                   .signal = std::string(kSignalEvm),
                   .severity = AlertSeverity::kWarning,
                   .cooldown_s = 0.01,
                   .threshold = ThresholdRule{
                       .bound = 0.5, .fire_above = true, .hysteresis = 0.1}});
  // Drift-class (watchdog-trigger) rule: CUSUM over the per-frame EVM
  // stream. Warmup spans 32 frames, well inside the healthy prefix.
  rules.push_back(
      {.name = "evm.cusum",
       .signal = std::string(kSignalEvm),
       .severity = AlertSeverity::kCritical,
       .cooldown_s = 0.01,
       .change = ChangePointRule{
           .detector = ChangeDetector::kCusum,
           .cusum = {.warmup = 32, .slack = 0.5, .threshold = 8.0}}});
  return rules;
}

obs::health::AlertEngine MakeFaultStreamEngine() {
  obs::health::AlertEngine engine(0);
  for (obs::health::AlertRule& rule : FaultStreamRules()) {
    engine.AddRule(std::move(rule));
  }
  return engine;
}

// Feeds one frame's probe records to the engine as per-frame signal
// means: the adapter (HealthSignalsFromProbe) maps records onto health
// signals, and averaging within the frame restores the i.i.d.-across-
// observations assumption the change-point detectors normalize against
// (the ~10 probes inside one inference share a sample, so feeding them
// raw would hand the CUSUM ten correlated copies of each deviation).
void ObserveFrameAggregates(obs::health::AlertEngine& engine,
                            const std::vector<obs::ProbeRecord>& records,
                            double t_s,
                            std::vector<obs::health::Alert>& out) {
  std::vector<std::pair<std::string, std::pair<double, std::size_t>>> sums;
  for (const obs::ProbeRecord& record : records) {
    for (const auto& [signal, value] :
         obs::health::HealthSignalsFromProbe(record)) {
      bool found = false;
      for (auto& [name, acc] : sums) {
        if (name == signal) {
          acc.first += value;
          ++acc.second;
          found = true;
          break;
        }
      }
      if (!found) sums.push_back({signal, {value, 1}});
    }
  }
  for (const auto& [name, acc] : sums) {
    engine.Observe(name, t_s, acc.first / static_cast<double>(acc.second),
                   out);
  }
}

int Run(BenchReport& report) {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(91);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLinkConfig healthy_config = DefaultLinkConfig();

  // Fault-free reference accuracy at zero clock offset.
  const core::Deployment healthy(model, surface, healthy_config);
  Rng ref_rng(911);
  const double reference =
      healthy.EvaluateAccuracyAtOffset(ds.test, 0.0, ref_rng, kEvalSamples);

  Table table("Ablation: stuck-atom fraction vs graceful degradation",
              {"Stuck %", "Detected", "WDD health", "No mitigation",
               "With re-solve", "Recovered fraction"});
  double recovered_fraction_at_10pct = 0.0;
  for (const int stuck_pct : {0, 5, 10, 20}) {
    // Fixed aging background (phase-drift std 0.04 rad/s over a 60 s
    // horizon) plus the swept stuck fraction; the plan seed is fixed so
    // rows differ only in the knob under study.
    const std::string spec = "stuck=0." +
                             (stuck_pct < 10 ? "0" + std::to_string(stuck_pct)
                                             : std::to_string(stuck_pct)) +
                             ",drift=0.04,age=60,seed=33";
    auto injector = std::make_shared<const fault::FaultInjector>(
        fault::TryParseFaultSpec(spec).value(), surface.num_atoms());
    sim::OtaLinkConfig faulty_config = healthy_config;
    faulty_config.faults = injector;

    const core::Deployment degraded(model, surface, faulty_config);
    Rng deg_rng(911);
    const double degraded_acc = degraded.EvaluateAccuracyAtOffset(
        ds.test, 0.0, deg_rng, kEvalSamples);

    Rng diag_rng(913);
    const core::FaultDiagnosis diagnosis = core::DiagnoseDeployment(
        degraded, diag_rng, {.probe_symbols = kProbeSymbols});
    const core::Deployment recovered = core::RecoverFromFaults(
        model, surface, faulty_config, {}, diagnosis);
    Rng rec_rng(911);
    const double recovered_acc = recovered.EvaluateAccuracyAtOffset(
        ds.test, 0.0, rec_rng, kEvalSamples);

    const double lost = reference - degraded_acc;
    const double recovered_fraction =
        lost > 0.0 ? (recovered_acc - degraded_acc) / lost : 1.0;
    if (stuck_pct == 10) recovered_fraction_at_10pct = recovered_fraction;
    table.AddRow({std::to_string(stuck_pct),
                  std::to_string(diagnosis.num_stuck),
                  FormatDouble(diagnosis.wdd_ratio, 4),
                  FormatPercent(degraded_acc), FormatPercent(recovered_acc),
                  FormatDouble(recovered_fraction, 3)});
  }
  table.Print(std::cout);
  report.Headline("reference_accuracy", reference);
  report.Headline("recovered_fraction_at_10pct_stuck",
                  recovered_fraction_at_10pct);

  // --- Closed-loop online detection and alert-driven recovery. ---
  // Each frame serves one inference with a probe sink installed; the
  // captured records stream through the AlertEngine probe adapter
  // (EVM + label-free margin): healthy link up to kFaultFrame, then
  // 10% stuck atoms + aging drift. Detection latency is the frame
  // count from injection to the first watchdog-class (drift or
  // critical) alert.
  const std::string spec = "stuck=0.10,drift=0.04,age=60,seed=33";
  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec(spec).value(), surface.num_atoms());
  sim::OtaLinkConfig faulty_config = healthy_config;
  faulty_config.faults = injector;
  const core::Deployment degraded(model, surface, faulty_config);

  obs::health::AlertEngine engine = MakeFaultStreamEngine();
  std::vector<obs::health::Alert> alerts;
  Rng stream_rng(917);
  // Frames draw test samples uniformly at random (fixed seed) so the
  // healthy stream is stationary; walking the test set in order would
  // alias the dataset's class layout into a spurious drift.
  Rng sample_rng(921);
  std::optional<obs::health::Alert> trip;
  std::size_t trip_frame = 0;
  for (std::size_t frame = 0; frame < kMaxFrames && !trip; ++frame) {
    const core::Deployment& live =
        frame < kFaultFrame ? healthy : degraded;
    const auto& pixels = ds.test.features[sample_rng.UniformInt(
        std::uint64_t{ds.test.features.size()})];
    obs::ProbeSink sink;
    {
      const obs::ScopedProbeSink scoped(&sink);
      (void)live.ClassifyWithMargin(pixels, 0.0, stream_rng);
    }
    const double t_s = static_cast<double>(frame + 1) * kFrameS;
    const std::size_t before = alerts.size();
    ObserveFrameAggregates(engine, sink.TakeAll(), t_s, alerts);
    for (std::size_t i = before; i < alerts.size(); ++i) {
      if (alerts[i].kind == obs::health::AlertKind::kDriftDetected ||
          alerts[i].severity == obs::health::AlertSeverity::kCritical) {
        trip = alerts[i];
        trip_frame = frame;
        break;
      }
    }
    if (frame + 1 == kFaultFrame && !alerts.empty()) {
      std::fprintf(stderr,
                   "FAILED: %zu alerts before the fault was injected\n",
                   alerts.size());
      return 1;
    }
  }
  if (!trip) {
    std::fprintf(stderr, "FAILED: fault never detected within %zu frames\n",
                 kMaxFrames - kFaultFrame);
    return 1;
  }
  const double detection_latency_frames =
      static_cast<double>(trip_frame - kFaultFrame + 1);

  // Control stream: the same engine configuration over an all-healthy
  // run of the same length must stay silent — the clean false-alert
  // rate is gated at exactly zero.
  obs::health::AlertEngine clean_engine = MakeFaultStreamEngine();
  std::vector<obs::health::Alert> clean_alerts;
  Rng clean_rng(917);
  Rng clean_sample_rng(921);
  for (std::size_t frame = 0; frame < kMaxFrames; ++frame) {
    const auto& pixels = ds.test.features[clean_sample_rng.UniformInt(
        std::uint64_t{ds.test.features.size()})];
    obs::ProbeSink sink;
    {
      const obs::ScopedProbeSink scoped(&sink);
      (void)healthy.ClassifyWithMargin(pixels, 0.0, clean_rng);
    }
    const double t_s = static_cast<double>(frame + 1) * kFrameS;
    ObserveFrameAggregates(clean_engine, sink.TakeAll(), t_s, clean_alerts);
  }
  if (!clean_alerts.empty()) {
    std::fprintf(stderr, "FAILED: clean stream raised %zu false alerts\n",
                 clean_alerts.size());
    for (const obs::health::Alert& alert : clean_alerts) {
      std::fprintf(stderr, "  t=%.3f rule=%s value=%.5f threshold=%.5f\n",
                   alert.t_s, alert.rule.c_str(), alert.value,
                   alert.threshold);
    }
    return 1;
  }

  // The alert, not a polling spot-check, triggers the diagnose ->
  // re-solve pipeline.
  Rng watchdog_rng(919);
  const core::FaultWatchdogResult watchdog = core::RunFaultWatchdogOnAlert(
      model, surface, faulty_config, {}, degraded, ds.test, reference, *trip,
      watchdog_rng,
      {.diagnosis = {.probe_symbols = kProbeSymbols},
       .check_samples = kEvalSamples});

  Table online("Online detection: streaming probes -> alert -> re-solve",
               {"Fault frame", "Alert frame", "Latency frames", "Rule",
                "Clean false alerts", "Recovered acc"});
  online.AddRow({std::to_string(kFaultFrame), std::to_string(trip_frame),
                 FormatDouble(detection_latency_frames, 0), trip->rule,
                 std::to_string(clean_alerts.size()),
                 FormatPercent(watchdog.report.recovered_accuracy)});
  online.Print(std::cout);

  report.Headline("detection_latency_frames", detection_latency_frames);
  report.Headline("false_alerts_clean",
                  static_cast<double>(clean_alerts.size()));
  report.Headline("alert_recovered_accuracy",
                  watchdog.report.recovered_accuracy);

  std::cout << "(Finding: the toggle diagnosis pinpoints the stuck set"
               " exactly, and the masked\n re-solve against the measured"
               " steering recovers most of the lost accuracy —\n the"
               " aperture degrades gracefully instead of failing with the"
               " first pinned diode.\n Online, the streaming EVM probes flag"
               " the fault within a frame of injection\n and the alert —"
               " not a polling spot-check — pays for the diagnosis.)\n";
  return 0;
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_faults");
  return metaai::bench::Run(report);
}
