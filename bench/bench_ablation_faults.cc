// Ablation: hardware faults vs graceful degradation (metaai::fault).
//
// Sweeps the fraction of stuck meta-atoms on top of a fixed aging-drift
// background and reports, per operating point:
//  * how many stuck atoms the over-the-air toggle diagnosis detects,
//  * the WDD aperture-health ratio of the surviving aperture,
//  * the degraded accuracy with NO mitigation (the solver still targets
//    the idealized full aperture), and
//  * the recovered accuracy after the fault-aware re-solve (stuck atoms
//    masked out of coordinate descent, targets solved against the
//    measured per-atom steering).
// The headline metric is the fraction of the lost accuracy the re-solve
// recovers at the 10% stuck point — the ISSUE acceptance threshold is
// one half.
//
// Every stage is deterministic for any METAAI_THREADS: training and the
// mapper fan out via obs::DeterministicParallelFor, and the diagnosis
// probes consume a single sequential Rng stream.
#include "bench_util.h"

#include "common/table.h"
#include "fault/injector.h"

namespace metaai::bench {
namespace {

// Diagnosis integration length. One atom's toggle sits ~48 dB below the
// 256-atom aggregate, so the probes integrate longer than the default.
constexpr std::size_t kProbeSymbols = 128;
constexpr std::size_t kEvalSamples = 120;

void Run(BenchReport& report) {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(91);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLinkConfig healthy_config = DefaultLinkConfig();

  // Fault-free reference accuracy at zero clock offset.
  const core::Deployment healthy(model, surface, healthy_config);
  Rng ref_rng(911);
  const double reference =
      healthy.EvaluateAccuracyAtOffset(ds.test, 0.0, ref_rng, kEvalSamples);

  Table table("Ablation: stuck-atom fraction vs graceful degradation",
              {"Stuck %", "Detected", "WDD health", "No mitigation",
               "With re-solve", "Recovered fraction"});
  double recovered_fraction_at_10pct = 0.0;
  for (const int stuck_pct : {0, 5, 10, 20}) {
    // Fixed aging background (phase-drift std 0.04 rad/s over a 60 s
    // horizon) plus the swept stuck fraction; the plan seed is fixed so
    // rows differ only in the knob under study.
    const std::string spec = "stuck=0." +
                             (stuck_pct < 10 ? "0" + std::to_string(stuck_pct)
                                             : std::to_string(stuck_pct)) +
                             ",drift=0.04,age=60,seed=33";
    auto injector = std::make_shared<const fault::FaultInjector>(
        fault::TryParseFaultSpec(spec).value(), surface.num_atoms());
    sim::OtaLinkConfig faulty_config = healthy_config;
    faulty_config.faults = injector;

    const core::Deployment degraded(model, surface, faulty_config);
    Rng deg_rng(911);
    const double degraded_acc = degraded.EvaluateAccuracyAtOffset(
        ds.test, 0.0, deg_rng, kEvalSamples);

    Rng diag_rng(913);
    const core::FaultDiagnosis diagnosis = core::DiagnoseDeployment(
        degraded, diag_rng, {.probe_symbols = kProbeSymbols});
    const core::Deployment recovered = core::RecoverFromFaults(
        model, surface, faulty_config, {}, diagnosis);
    Rng rec_rng(911);
    const double recovered_acc = recovered.EvaluateAccuracyAtOffset(
        ds.test, 0.0, rec_rng, kEvalSamples);

    const double lost = reference - degraded_acc;
    const double recovered_fraction =
        lost > 0.0 ? (recovered_acc - degraded_acc) / lost : 1.0;
    if (stuck_pct == 10) recovered_fraction_at_10pct = recovered_fraction;
    table.AddRow({std::to_string(stuck_pct),
                  std::to_string(diagnosis.num_stuck),
                  FormatDouble(diagnosis.wdd_ratio, 4),
                  FormatPercent(degraded_acc), FormatPercent(recovered_acc),
                  FormatDouble(recovered_fraction, 3)});
  }
  table.Print(std::cout);
  report.Headline("reference_accuracy", reference);
  report.Headline("recovered_fraction_at_10pct_stuck",
                  recovered_fraction_at_10pct);
  std::cout << "(Finding: the toggle diagnosis pinpoints the stuck set"
               " exactly, and the masked\n re-solve against the measured"
               " steering recovers most of the lost accuracy —\n the"
               " aperture degrades gracefully instead of failing with the"
               " first pinned diode.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_faults");
  metaai::bench::Run(report);
  return 0;
}
