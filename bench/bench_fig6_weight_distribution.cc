// Fig 6: distribution of resultant (reachable) weights on the complex
// plane for increasing meta-atom counts. More atoms -> denser coverage of
// the normalized weight disk -> better approximation of arbitrary desired
// weights. We report the lattice size and how far random in-disk targets
// are from the nearest reachable weight.
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"
#include "mts/wdd.h"

namespace metaai::bench {
namespace {

void Run() {
  Table table("Fig 6: Distribution of resultant weights vs meta-atoms",
              {"Meta-atoms", "Reachable weights", "Mean nearest dist",
               "95th pct nearest dist"});
  Rng rng(6);
  for (const std::size_t atoms : {16u, 64u, 256u, 1024u}) {
    const auto weights = mts::ReachableNormalizedWeights(atoms);
    std::vector<double> distances;
    distances.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      std::complex<double> target;
      do {
        target = {rng.Uniform(-0.707, 0.707), rng.Uniform(-0.707, 0.707)};
      } while (std::abs(target) > 0.7071);
      distances.push_back(mts::NearestWeightDistance(target, atoms));
    }
    table.AddRow({std::to_string(atoms), std::to_string(weights.size()),
                  FormatDouble(Mean(distances), 5),
                  FormatDouble(Percentile(distances, 95.0), 5)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: nearest-distance shrinks ~1/M; by M = 256 the\n"
               " lattice pitch is far below the weight tolerance.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig6_weight_distribution");
  metaai::bench::Run();
  return 0;
}
