// Ablation: the CDFA error injector's distribution (§3.5.1).
//
// The paper injects Gamma-distributed cyclic shifts matched to the coarse
// detector's measured latency distribution (Fig 12). This ablation
// compares injector designs under the physical Gamma-distributed errors:
//  * none              — plain training;
//  * uniform [0..5]    — flat coverage of small shifts;
//  * pure Gamma        — matched to the deployment distribution;
//  * Gamma + small mix — the matched distribution with a 25% small-error
//                        mixture (this repo's default) so the on-time
//                        (zero-shift) case stays in distribution.
#include "bench_util.h"

#include "common/table.h"
#include "data/encoding.h"

namespace metaai::bench {
namespace {

core::TrainedModel TrainWithInjector(
    const data::Dataset& ds,
    const std::function<void(std::vector<nn::Complex>&, Rng&)>& augment) {
  Rng rng(83);
  const auto encoded = data::EncodeDataset(ds.train, rf::Modulation::kQam256);
  nn::ComplexLinearModel network(ds.train.dim, ds.num_classes);
  network.Initialize(rng);
  nn::ComplexTrainOptions options;
  options.input_augment = augment;
  network.Train(encoded, options, rng);
  return {std::move(network), rf::Modulation::kQam256};
}

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::SyncModel coarse(sim::SyncMode::kCoarse);  // full Gamma errors

  struct Injector {
    const char* label;
    std::function<void(std::vector<nn::Complex>&, Rng&)> augment;
  };
  const Injector injectors[] = {
      {"none", nullptr},
      {"uniform [0..5]",
       [](std::vector<nn::Complex>& x, Rng& r) {
         core::CyclicShift(x, static_cast<std::size_t>(r.UniformInt(0, 5)));
       }},
      {"pure Gamma(2, 1.85)",
       [](std::vector<nn::Complex>& x, Rng& r) {
         core::CyclicShift(x, static_cast<std::size_t>(std::llround(
                                  r.Gamma(2.0, 1.85))));
       }},
      {"Gamma + 25% small mix (default)",
       [](std::vector<nn::Complex>& x, Rng& r) {
         const double e = r.Bernoulli(0.25) ? r.Uniform(0.0, 1.85)
                                            : r.Gamma(2.0, 1.85);
         core::CyclicShift(x, static_cast<std::size_t>(std::llround(e)));
       }},
  };

  Table table("Ablation: CDFA injector distribution (accuracy % under "
              "Gamma-distributed coarse sync errors)",
              {"Injector", "Accuracy", "Accuracy at 0 us"});
  for (const Injector& injector : injectors) {
    const auto model = TrainWithInjector(ds, injector.augment);
    core::Deployment deployment(model, surface, DefaultLinkConfig());
    Rng eval_rng(831);
    const double coarse_acc =
        deployment.EvaluateAccuracy(ds.test, coarse, eval_rng, 200);
    const double zero_acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 150);
    table.AddRow({injector.label, FormatPercent(coarse_acc),
                  FormatPercent(zero_acc)});
    std::fprintf(stderr, "[ablation_injector] %s done\n", injector.label);
  }
  table.Print(std::cout);
  std::cout << "(Finding: the distribution-matched Gamma injector wins"
               " under deployed errors;\n the small-error mixture buys"
               " back the zero-offset case at almost no cost.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_injector");
  metaai::bench::Run();
  return 0;
}
