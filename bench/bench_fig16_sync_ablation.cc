// Fig 16: ablation of the synchronization scheme.
//
// Three operating points, all over the air on the MNIST-like task:
//  * w/o sync — plain model, the MTS starts its schedule at an arbitrary
//    time (uniform error over many symbols): essentially a blind guess;
//  * CD — coarse-grained energy detection only, plain model: errors follow
//    the Fig 12 Gamma distribution, untrained;
//  * CDFA — coarse detection + the Gamma-matched training injector.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng_plain(16);
  const auto plain = core::TrainModel(ds.train, {}, rng_plain);
  Rng rng_cdfa(16);
  core::TrainingOptions cdfa_options;
  cdfa_options.sync_error_injection = true;  // full-scale Gamma(2, 1.85)
  const auto cdfa = core::TrainModel(ds.train, cdfa_options, rng_cdfa);

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment dep_plain(plain, surface, DefaultLinkConfig());
  const core::Deployment dep_cdfa(cdfa, surface, DefaultLinkConfig());

  Rng rng(161);
  const sim::SyncModel none(sim::SyncMode::kNone);
  const sim::SyncModel coarse(sim::SyncMode::kCoarse);

  Table table("Fig 16: Performance of the sync scheme (accuracy %)",
              {"Scheme", "Accuracy"});
  table.AddRow({"w/o sync",
                FormatPercent(dep_plain.EvaluateAccuracy(ds.test, none, rng,
                                                         200))});
  table.AddRow({"CD",
                FormatPercent(dep_plain.EvaluateAccuracy(ds.test, coarse,
                                                         rng, 200))});
  table.AddRow({"CDFA",
                FormatPercent(dep_cdfa.EvaluateAccuracy(ds.test, coarse,
                                                        rng, 200))});
  table.Print(std::cout);
  std::cout << "(Shape check: w/o sync ~ blind guess, CD a large step up,\n"
               " CDFA close to the synced accuracy. Paper: 19.2 / 55.7 /"
               " 89.3 on 784-symbol streams; our streams are 256 symbols,\n"
               " so identical microsecond errors are ~3x larger relative"
               " shifts — see EXPERIMENTS.md.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig16_sync_ablation");
  metaai::bench::Run();
  return 0;
}
