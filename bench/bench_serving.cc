// Serving: batched multi-tenant OTA inference vs the naive per-request
// path.
//
// Four edge clients share one metasurface through metaai::serve. The
// batched runtime coalesces queued requests into TDMA frames (guard
// interval amortized per slot) and fans the OTA classifications out over
// the worker pool; the solver-result cache deduplicates the expensive
// weight-mapping solve across tenants deploying the same model. The
// naive baseline maps every tenant from scratch and processes requests
// strictly one at a time, one single-slot frame each.
//
// Reported: wall-clock serving throughput at 1/2/4/8 threads, the
// end-to-end (map all tenants + serve the trace) batched-vs-naive
// speedup at 8 threads (hard-gated at >= 2x), virtual
// queue-wait/latency p50/p99/p999, the per-stage lifecycle breakdown
// (admission -> queue wait -> batching -> solve -> airtime -> demod),
// goodput under each tenant's SLO, per-inference energy from the link
// budget, and the mapping cache hit rate. The end-to-end framing
// matters: the serving fan-out only buys wall-clock time when cores are
// available, so on a single-core host the speedup comes from the cache
// deduplicating the per-tenant mapping solve, and extra cores widen the
// gap through the batched frame fan-out. The bench also verifies the
// determinism contract: predictions are byte-identical across thread
// counts, frame budgets, cached/uncached mapping, and batched/naive
// execution, and the lifecycle-trace + time-series + alert exports are
// bitwise identical at 1/2/4/8 threads. The per-tenant health engines
// run on this workload too: a clean link must raise zero drift alerts
// (hard gate), and the total alert count is pinned by the baseline.
#include <chrono>
#include <memory>

#include "bench_util.h"

#include "common/table.h"
#include "mts/config_cache.h"
#include "mts/layer_graph.h"
#include "obs/alerts.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"
#include "serve/generator.h"
#include "serve/runtime.h"

namespace metaai::bench {
namespace {

constexpr std::size_t kClients = 8;
constexpr double kArrivalRateHz = 400.0;
constexpr double kTraceDurationS = 0.02;

std::vector<serve::ClientSpec> MakeClients(const core::TrainedModel& model) {
  std::vector<serve::ClientSpec> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    // Staggered end-to-end latency targets (50..120 ms): under the
    // shared-frame backlog some tenants meet their SLO and some burn
    // it, which is what the goodput/violation accounting measures.
    clients.push_back({.name = "edge" + std::to_string(c),
                       .model = model,
                       .link = DefaultLinkConfig(),
                       .deployment = {},
                       .slo_latency_s = 0.05 + 0.01 * static_cast<double>(c)});
  }
  return clients;
}

std::vector<int> Predictions(const serve::ServeResult& result) {
  std::vector<int> predicted;
  predicted.reserve(result.responses.size());
  for (const serve::ServeResponse& response : result.responses) {
    predicted.push_back(response.predicted);
  }
  return predicted;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run(BenchReport& report) {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(91);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::LayerGraph graph = mts::LayerGraph::FromSurface(
      mts::Metasurface{mts::MetasurfaceSpec{}});
  const sim::SyncModel sync = DeploymentSyncModel();

  // Workload: 8 clients x 400 Hz Poisson arrivals over 0.02 s of
  // virtual time (~64 requests), pixels drawn from the test set.
  std::vector<serve::ClientWorkload> workload;
  for (std::size_t c = 0; c < kClients; ++c) {
    workload.push_back({.arrival_rate_hz = kArrivalRateHz,
                        .samples = &ds.test});
  }
  Rng workload_rng(911);
  const auto requests =
      serve::GenerateWorkload(workload, kTraceDurationS, workload_rng).value();
  report.Headline("requests", static_cast<double>(requests.size()));

  // Batched arm: identical tenants share one solve through the cache.
  const auto cache = std::make_shared<mts::ConfigCache>();
  const auto cached_start = std::chrono::steady_clock::now();
  const serve::Runtime batched(graph, MakeClients(model), {.cache = cache});
  const double cached_construct_s = Seconds(cached_start);

  // Naive arm: no cache (every tenant re-solves), serial per-request
  // serving.
  const auto naive_start = std::chrono::steady_clock::now();
  const serve::Runtime naive(graph, MakeClients(model), {});
  const double naive_construct_s = Seconds(naive_start);

  const auto stats = cache->stats();
  report.Headline("cache_hit_rate", stats.HitRate());
  report.Headline("mapping_cached_construct_s", cached_construct_s);
  report.Headline("mapping_uncached_construct_s", naive_construct_s);

  Table table("Serving: batched multi-tenant runtime vs naive per-request",
              {"Config", "Wall s", "Throughput req/s", "Virtual p50 lat us",
               "Virtual p99 lat us", "Frames"});
  std::vector<int> reference;
  std::string reference_requests_jsonl;
  std::string reference_timeseries_jsonl;
  std::string reference_alerts_jsonl;
  double batched_8t_s = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const par::ScopedThreadCount scoped(threads);
    Rng serve_rng(92);
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeResult result = batched.Run(requests, sync, serve_rng);
    const double wall_s = Seconds(start);
    if (threads == 8) batched_8t_s = wall_s;
    const double throughput =
        static_cast<double>(result.stats.served) / wall_s;
    table.AddRow({"batched " + std::to_string(threads) + "t",
                  FormatDouble(wall_s, 3), FormatDouble(throughput, 1),
                  FormatDouble(result.stats.latency_p50_s * 1e6, 1),
                  FormatDouble(result.stats.latency_p99_s * 1e6, 1),
                  std::to_string(result.stats.frames)});
    report.Headline("throughput_batched_" + std::to_string(threads) +
                        "t_per_s",
                    throughput);
    const std::string requests_jsonl =
        obs::ToRequestsJsonl(result.request_log);
    const std::string timeseries_jsonl =
        obs::ToTimeSeriesJsonl(result.timeseries);
    const std::string alerts_jsonl =
        obs::health::ToAlertsJsonl(result.alerts);
    if (threads == 1) {
      reference = Predictions(result);
      reference_requests_jsonl = requests_jsonl;
      reference_timeseries_jsonl = timeseries_jsonl;
      reference_alerts_jsonl = alerts_jsonl;
      // Clean-run health gate: this workload has no injected faults and
      // a healthy link, so the drift detectors must stay silent. (SLO
      // magnitude alerts count separately — they reflect genuine
      // backlog, not detector false positives — and are pinned by the
      // alerts_total baseline.)
      report.Headline("alerts_total",
                      static_cast<double>(result.stats.alerts));
      report.Headline("false_drift_alerts_clean",
                      static_cast<double>(result.stats.drift_alerts));
      report.Headline("margin_p50", result.stats.margin_p50);
      if (result.stats.drift_alerts != 0) {
        std::fprintf(stderr,
                     "FAILED: clean serving run raised %zu drift alerts\n",
                     result.stats.drift_alerts);
        return 1;
      }
      report.Headline("served", static_cast<double>(result.stats.served));
      report.Headline("latency_p50_us", result.stats.latency_p50_s * 1e6);
      report.Headline("latency_p99_us", result.stats.latency_p99_s * 1e6);
      report.Headline("latency_p999_us", result.stats.latency_p999_s * 1e6);
      report.Headline("queue_wait_p50_us",
                      result.stats.queue_wait_p50_s * 1e6);
      report.Headline("queue_wait_p99_us",
                      result.stats.queue_wait_p99_s * 1e6);
      report.Headline("queue_wait_p999_us",
                      result.stats.queue_wait_p999_s * 1e6);
      report.Headline("slo_within",
                      static_cast<double>(result.stats.slo_within));
      report.Headline("slo_violations",
                      static_cast<double>(result.stats.slo_violations));
      report.Headline("goodput_slo_rps", result.stats.goodput_slo_rps);
      report.Headline("energy_total_mj", result.stats.energy_total_j * 1e3);
      report.Headline("energy_per_inference_mj",
                      result.stats.energy_per_inference_j * 1e3);
      report.Headline(
          "accuracy",
          static_cast<double>(result.stats.correct) /
              static_cast<double>(result.stats.labeled));

      // Per-stage lifecycle breakdown over the serial run's traces.
      const obs::StageTails tails =
          obs::DigestStages(result.request_log.traces);
      Table stages("Serving: per-stage latency breakdown",
                   {"Stage", "p50 us", "p99 us", "p999 us"});
      for (std::size_t s = 0; s < obs::kNumRequestStages; ++s) {
        stages.AddRow({std::string(obs::RequestStageName(
                           static_cast<obs::RequestStage>(s))),
                       FormatDouble(tails.stage[s].p50 * 1e6, 1),
                       FormatDouble(tails.stage[s].p99 * 1e6, 1),
                       FormatDouble(tails.stage[s].p999 * 1e6, 1)});
      }
      stages.AddRow({"end_to_end", FormatDouble(tails.latency.p50 * 1e6, 1),
                     FormatDouble(tails.latency.p99 * 1e6, 1),
                     FormatDouble(tails.latency.p999 * 1e6, 1)});
      stages.Print(std::cout);

      // Per-tenant SLO table.
      Table tenants("Serving: per-tenant SLO",
                    {"Tenant", "Served", "SLO ms", "Within", "Violations",
                     "p99 us", "Energy mJ"});
      for (const serve::TenantStats& tenant : result.stats.tenants) {
        tenants.AddRow({tenant.name, std::to_string(tenant.served),
                        FormatDouble(tenant.slo_s * 1e3, 0),
                        std::to_string(tenant.slo_within),
                        std::to_string(tenant.slo_violations),
                        FormatDouble(tenant.latency_p99_s * 1e6, 1),
                        FormatDouble(tenant.energy_j * 1e3, 3)});
      }
      tenants.Print(std::cout);

      // Export the serial run's lifecycle traces and time series next
      // to the BENCH json so the obs-report tool can render them.
      if (const char* dir = std::getenv("METAAI_BENCH_OUT")) {
        obs::WriteRequestsFile(result.request_log,
                               std::string(dir) + "/REQUESTS_serving.jsonl");
        obs::WriteTimeSeriesFile(
            result.timeseries,
            std::string(dir) + "/TIMESERIES_serving.jsonl");
        obs::health::WriteAlertsFile(
            result.alerts, std::string(dir) + "/ALERTS_serving.jsonl");
      }
    } else {
      if (Predictions(result) != reference) {
        std::fprintf(stderr,
                     "FAILED: predictions at %d threads diverge from serial\n",
                     threads);
        return 1;
      }
      // The acceptance gate: lifecycle-trace, time-series, and alert
      // exports must be bitwise identical for any thread count.
      if (requests_jsonl != reference_requests_jsonl ||
          timeseries_jsonl != reference_timeseries_jsonl ||
          alerts_jsonl != reference_alerts_jsonl) {
        std::fprintf(stderr,
                     "FAILED: telemetry exports at %d threads diverge from "
                     "serial\n",
                     threads);
        return 1;
      }
    }
  }

  // Naive per-request baseline at the same 8-thread setting (its serving
  // loop is inherently serial; the thread pool is available but unused).
  {
    const par::ScopedThreadCount scoped(8);
    Rng serve_rng(92);
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeResult result =
        naive.RunUnbatched(requests, sync, serve_rng);
    const double wall_s = Seconds(start);
    const double throughput =
        static_cast<double>(result.stats.served) / wall_s;
    table.AddRow({"naive 8t", FormatDouble(wall_s, 3),
                  FormatDouble(throughput, 1),
                  FormatDouble(result.stats.latency_p50_s * 1e6, 1),
                  FormatDouble(result.stats.latency_p99_s * 1e6, 1),
                  std::to_string(result.stats.frames)});
    report.Headline("throughput_naive_8t_per_s", throughput);
    // End to end: mapping all tenants onto the surface plus serving the
    // trace. The cache collapses kClients solves into one; the frame
    // fan-out additionally shrinks the serve term when cores are
    // available.
    const double batched_total_s = cached_construct_s + batched_8t_s;
    const double naive_total_s = naive_construct_s + wall_s;
    const double speedup = naive_total_s / batched_total_s;
    report.Headline("end_to_end_batched_s", batched_total_s);
    report.Headline("end_to_end_naive_s", naive_total_s);
    report.Headline("speedup_batched_vs_naive", speedup);
    table.Print(std::cout);
    if (Predictions(result) != reference) {
      std::fprintf(stderr,
                   "FAILED: naive predictions diverge from batched\n");
      return 1;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAILED: batched+cached speedup %.2fx below the 2x gate\n",
                   speedup);
      return 1;
    }
    std::cout << "(map " << kClients
              << " tenants + serve, batching+cache vs naive per-request at 8 "
                 "threads: "
              << FormatDouble(speedup, 2) << "x)\n";
  }

  // Determinism across frame budgets and cached/uncached mapping: the
  // per-request Rng streams make every composition byte-identical.
  {
    const serve::Runtime drip(graph, MakeClients(model),
                              {.frame_budget = 1, .cache = cache});
    Rng drip_rng(92);
    Rng uncached_rng(92);
    serve::ServeResult uncached = naive.Run(requests, sync, uncached_rng);
    if (Predictions(drip.Run(requests, sync, drip_rng)) != reference ||
        Predictions(uncached) != reference) {
      std::fprintf(stderr,
                   "FAILED: frame-budget or cache composition changed "
                   "predictions\n");
      return 1;
    }
    // Cached and uncached serving differ only in the traces' mapping
    // provenance flag: normalizing it must recover the exact bytes of
    // the cached run's export.
    for (obs::RequestTrace& trace : uncached.request_log.traces) {
      trace.cache_hit = true;
    }
    std::string normalized_reference = reference_requests_jsonl;
    std::size_t pos = 0;
    while ((pos = normalized_reference.find("\"cache_hit\":false", pos)) !=
           std::string::npos) {
      normalized_reference.replace(pos, 17, "\"cache_hit\":true");
    }
    if (obs::ToRequestsJsonl(uncached.request_log) != normalized_reference) {
      std::fprintf(stderr,
                   "FAILED: uncached lifecycle traces diverge beyond the "
                   "cache_hit flag\n");
      return 1;
    }
  }

  // Warm-start arm: each tenant deploys a fine-tuned variant of the
  // shared model, so the exact-key cache dedup never hits and every
  // tenant's mapping is a fresh coordinate-descent solve. With
  // warm_start_distance set, tenant 1 seeds the cache and tenants 2..N
  // warm-start from its schedule, early-exiting once a sweep stops
  // paying. The sweep totals are deterministic for a fixed dispatch
  // level (headline-gated by the baseline); accuracy must stay within
  // the solver's residual tolerance of the cold arm.
  {
    std::vector<serve::ClientSpec> tuned = MakeClients(model);
    Rng tune_rng(94);
    for (serve::ClientSpec& client : tuned) {
      ComplexMatrix& w = client.model.network.mutable_weights();
      for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
          w(r, c) += tune_rng.ComplexNormal(1e-5);
        }
      }
    }

    const auto mapping_sweeps = [](const obs::Registry& registry) {
      for (const auto& [name, value] : registry.Snapshot().counters) {
        if (name == "solver.sweeps") return value;
      }
      return std::uint64_t{0};
    };

    // Both arms run under their own registry so neither the mapping nor
    // the serving counters leak into the bench report (the committed
    // serving baseline pins the main arms only).
    obs::Registry cold_registry;
    auto cold_cache = std::make_shared<mts::ConfigCache>();
    serve::ServeResult cold_result;
    {
      const obs::ScopedRegistry scoped(&cold_registry);
      serve::Runtime cold(graph, tuned,
                          serve::RuntimeOptions{.cache = cold_cache});
      Rng cold_rng(92);
      cold_result = cold.Run(requests, sync, cold_rng);
    }
    obs::Registry warm_registry;
    auto warm_cache = std::make_shared<mts::ConfigCache>();
    serve::ServeResult warm_result;
    {
      const obs::ScopedRegistry scoped(&warm_registry);
      serve::RuntimeOptions options{.cache = warm_cache};
      options.warm_start_distance = 0.1;
      serve::Runtime warm(graph, tuned, options);
      Rng warm_rng(92);
      warm_result = warm.Run(requests, sync, warm_rng);
    }
    const std::uint64_t cold_sweeps = mapping_sweeps(cold_registry);
    const std::uint64_t warm_sweeps = mapping_sweeps(warm_registry);
    const auto accuracy = [](const serve::ServeStats& stats) {
      return static_cast<double>(stats.correct) /
             static_cast<double>(stats.labeled);
    };
    report.Headline("warm_start_cold_mapping_sweeps",
                    static_cast<double>(cold_sweeps));
    report.Headline("warm_start_warm_mapping_sweeps",
                    static_cast<double>(warm_sweeps));
    report.Headline("warm_start_cold_accuracy", accuracy(cold_result.stats));
    report.Headline("warm_start_warm_accuracy", accuracy(warm_result.stats));
    std::cout << "(warm-started near-duplicate tenants: " << cold_sweeps
              << " -> " << warm_sweeps << " mapping sweeps, accuracy "
              << FormatPercent(accuracy(cold_result.stats)) << " cold vs "
              << FormatPercent(accuracy(warm_result.stats)) << " warm)\n";
    if (warm_sweeps >= cold_sweeps) {
      std::fprintf(stderr,
                   "FAILED: warm-started tenant mapping did not save sweeps "
                   "(%llu warm vs %llu cold)\n",
                   static_cast<unsigned long long>(warm_sweeps),
                   static_cast<unsigned long long>(cold_sweeps));
      return 1;
    }
    if (accuracy(warm_result.stats) < accuracy(cold_result.stats) - 0.05) {
      std::fprintf(stderr,
                   "FAILED: warm-started serving accuracy dropped beyond "
                   "tolerance\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("serving");
  return metaai::bench::Run(report);
}
