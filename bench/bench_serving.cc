// Serving: batched multi-tenant OTA inference vs the naive per-request
// path.
//
// Four edge clients share one metasurface through metaai::serve. The
// batched runtime coalesces queued requests into TDMA frames (guard
// interval amortized per slot) and fans the OTA classifications out over
// the worker pool; the solver-result cache deduplicates the expensive
// weight-mapping solve across tenants deploying the same model. The
// naive baseline maps every tenant from scratch and processes requests
// strictly one at a time, one single-slot frame each.
//
// Reported: wall-clock serving throughput at 1/2/8 threads, the
// end-to-end (map all tenants + serve the trace) batched-vs-naive
// speedup at 8 threads (hard-gated at >= 2x), virtual
// queue-wait/latency percentiles, and the mapping cache hit rate. The
// end-to-end framing matters: the serving fan-out only buys wall-clock
// time when cores are available, so on a single-core host the speedup
// comes from the cache deduplicating the per-tenant mapping solve,
// and extra cores widen the gap through the batched frame fan-out. The
// bench also verifies the determinism contract: predictions are
// byte-identical across thread counts, frame budgets, cached/uncached
// mapping, and batched/naive execution.
#include <chrono>

#include "bench_util.h"

#include "common/table.h"
#include "mts/config_cache.h"
#include "serve/generator.h"
#include "serve/runtime.h"

namespace metaai::bench {
namespace {

constexpr std::size_t kClients = 8;
constexpr double kArrivalRateHz = 400.0;
constexpr double kTraceDurationS = 0.02;

std::vector<serve::ClientSpec> MakeClients(const core::TrainedModel& model) {
  std::vector<serve::ClientSpec> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back({.name = "edge" + std::to_string(c),
                       .model = model,
                       .link = DefaultLinkConfig(),
                       .deployment = {}});
  }
  return clients;
}

std::vector<int> Predictions(const serve::ServeResult& result) {
  std::vector<int> predicted;
  predicted.reserve(result.responses.size());
  for (const serve::ServeResponse& response : result.responses) {
    predicted.push_back(response.predicted);
  }
  return predicted;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run(BenchReport& report) {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(91);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::SyncModel sync = DeploymentSyncModel();

  // Workload: 8 clients x 400 Hz Poisson arrivals over 0.02 s of
  // virtual time (~64 requests), pixels drawn from the test set.
  std::vector<serve::ClientWorkload> workload;
  for (std::size_t c = 0; c < kClients; ++c) {
    workload.push_back({.arrival_rate_hz = kArrivalRateHz,
                        .samples = &ds.test});
  }
  Rng workload_rng(911);
  const auto requests =
      serve::GenerateWorkload(workload, kTraceDurationS, workload_rng).value();
  report.Headline("requests", static_cast<double>(requests.size()));

  // Batched arm: identical tenants share one solve through the cache.
  mts::ConfigCache cache;
  const auto cached_start = std::chrono::steady_clock::now();
  const serve::Runtime batched(surface, MakeClients(model),
                               {.cache = &cache});
  const double cached_construct_s = Seconds(cached_start);

  // Naive arm: no cache (every tenant re-solves), serial per-request
  // serving.
  const auto naive_start = std::chrono::steady_clock::now();
  const serve::Runtime naive(surface, MakeClients(model), {});
  const double naive_construct_s = Seconds(naive_start);

  const auto stats = cache.stats();
  report.Headline("cache_hit_rate", stats.HitRate());
  report.Headline("mapping_cached_construct_s", cached_construct_s);
  report.Headline("mapping_uncached_construct_s", naive_construct_s);

  Table table("Serving: batched multi-tenant runtime vs naive per-request",
              {"Config", "Wall s", "Throughput req/s", "Virtual p50 lat us",
               "Virtual p99 lat us", "Frames"});
  std::vector<int> reference;
  double batched_8t_s = 0.0;
  for (const int threads : {1, 2, 8}) {
    const par::ScopedThreadCount scoped(threads);
    Rng serve_rng(92);
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeResult result = batched.Run(requests, sync, serve_rng);
    const double wall_s = Seconds(start);
    if (threads == 8) batched_8t_s = wall_s;
    const double throughput =
        static_cast<double>(result.stats.served) / wall_s;
    table.AddRow({"batched " + std::to_string(threads) + "t",
                  FormatDouble(wall_s, 3), FormatDouble(throughput, 1),
                  FormatDouble(result.stats.latency_p50_s * 1e6, 1),
                  FormatDouble(result.stats.latency_p99_s * 1e6, 1),
                  std::to_string(result.stats.frames)});
    report.Headline("throughput_batched_" + std::to_string(threads) +
                        "t_per_s",
                    throughput);
    if (threads == 1) {
      reference = Predictions(result);
      report.Headline("served", static_cast<double>(result.stats.served));
      report.Headline("latency_p50_us", result.stats.latency_p50_s * 1e6);
      report.Headline("latency_p99_us", result.stats.latency_p99_s * 1e6);
      report.Headline("queue_wait_p50_us",
                      result.stats.queue_wait_p50_s * 1e6);
      report.Headline("queue_wait_p99_us",
                      result.stats.queue_wait_p99_s * 1e6);
      report.Headline(
          "accuracy",
          static_cast<double>(result.stats.correct) /
              static_cast<double>(result.stats.labeled));
    } else if (Predictions(result) != reference) {
      std::fprintf(stderr,
                   "FAILED: predictions at %d threads diverge from serial\n",
                   threads);
      return 1;
    }
  }

  // Naive per-request baseline at the same 8-thread setting (its serving
  // loop is inherently serial; the thread pool is available but unused).
  {
    const par::ScopedThreadCount scoped(8);
    Rng serve_rng(92);
    const auto start = std::chrono::steady_clock::now();
    const serve::ServeResult result =
        naive.RunUnbatched(requests, sync, serve_rng);
    const double wall_s = Seconds(start);
    const double throughput =
        static_cast<double>(result.stats.served) / wall_s;
    table.AddRow({"naive 8t", FormatDouble(wall_s, 3),
                  FormatDouble(throughput, 1),
                  FormatDouble(result.stats.latency_p50_s * 1e6, 1),
                  FormatDouble(result.stats.latency_p99_s * 1e6, 1),
                  std::to_string(result.stats.frames)});
    report.Headline("throughput_naive_8t_per_s", throughput);
    // End to end: mapping all tenants onto the surface plus serving the
    // trace. The cache collapses kClients solves into one; the frame
    // fan-out additionally shrinks the serve term when cores are
    // available.
    const double batched_total_s = cached_construct_s + batched_8t_s;
    const double naive_total_s = naive_construct_s + wall_s;
    const double speedup = naive_total_s / batched_total_s;
    report.Headline("end_to_end_batched_s", batched_total_s);
    report.Headline("end_to_end_naive_s", naive_total_s);
    report.Headline("speedup_batched_vs_naive", speedup);
    table.Print(std::cout);
    if (Predictions(result) != reference) {
      std::fprintf(stderr,
                   "FAILED: naive predictions diverge from batched\n");
      return 1;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAILED: batched+cached speedup %.2fx below the 2x gate\n",
                   speedup);
      return 1;
    }
    std::cout << "(map " << kClients
              << " tenants + serve, batching+cache vs naive per-request at 8 "
                 "threads: "
              << FormatDouble(speedup, 2) << "x)\n";
  }

  // Determinism across frame budgets and cached/uncached mapping: the
  // per-request Rng streams make every composition byte-identical.
  {
    const serve::Runtime drip(surface, MakeClients(model),
                              {.frame_budget = 1, .cache = &cache});
    Rng drip_rng(92);
    Rng uncached_rng(92);
    if (Predictions(drip.Run(requests, sync, drip_rng)) != reference ||
        Predictions(naive.Run(requests, sync, uncached_rng)) != reference) {
      std::fprintf(stderr,
                   "FAILED: frame-budget or cache composition changed "
                   "predictions\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("serving");
  return metaai::bench::Run(report);
}
