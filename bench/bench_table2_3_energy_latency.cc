// Tables 2-3 (Appendix A.4): end-to-end energy and latency.
//
// Reproduces the paper's comparison between "transmit raw data then
// compute on a server" pipelines (CPU / 4080 GPU running ResNet-18 or the
// software LNN) and MetaAI, where the matrix multiplications happen during
// propagation. The cost model's constants are fitted to the paper's
// measured rows (see sim/energy_model.h); accuracy columns come from this
// repo's Table 1 bands.
#include "bench_util.h"

#include "common/table.h"
#include "sim/energy_model.h"

namespace metaai::bench {
namespace {

void PrintDataset(const std::string& title, std::size_t pixels,
                  std::size_t classes, std::size_t parallel_width,
                  const std::vector<std::pair<std::string, double>>& acc) {
  const sim::EnergyModel model;
  Table table(title, {"System", "Model", "Accuracy", "Tx (ms)",
                      "Server (ms)", "Total (ms)", "Tx (mJ)", "Server (mJ)",
                      "MTS (mJ)", "Total (mJ)"});
  auto add = [&](const sim::EnergyLatencyRow& row, double accuracy) {
    table.AddRow({row.system, row.model, FormatPercent(accuracy),
                  FormatDouble(row.transmission_ms, 3),
                  FormatDouble(row.server_compute_ms, 3),
                  FormatDouble(row.total_ms, 3),
                  FormatDouble(row.transmission_mj, 3),
                  FormatDouble(row.server_compute_mj, 2),
                  row.mts_mj > 0.0 ? FormatDouble(row.mts_mj, 3) : "-",
                  FormatDouble(row.total_mj, 2)});
  };
  add(model.DigitalRow("CPU", "ResNet-18", pixels), acc[0].second);
  add(model.DigitalRow("CPU", "LNN", pixels), acc[1].second);
  add(model.DigitalRow("4080 GPU", "ResNet-18", pixels), acc[0].second);
  add(model.DigitalRow("4080 GPU", "LNN", pixels), acc[1].second);
  add(model.MetaAiRow(pixels, classes, parallel_width), acc[2].second);
  table.Print(std::cout);

  const auto metaai = model.MetaAiRow(pixels, classes, parallel_width);
  const auto cpu_lnn = model.DigitalRow("CPU", "LNN", pixels);
  const auto gpu_resnet = model.DigitalRow("4080 GPU", "ResNet-18", pixels);
  std::cout << "MetaAI energy advantage: " << FormatDouble(
                   cpu_lnn.total_mj / metaai.total_mj, 1)
            << "x vs CPU LNN, "
            << FormatDouble(gpu_resnet.total_mj / metaai.total_mj, 1)
            << "x vs GPU ResNet-18; total latency "
            << FormatDouble(metaai.total_ms, 3) << " ms vs CPU LNN "
            << FormatDouble(cpu_lnn.total_ms, 3) << " ms\n\n";
}

void Run() {
  // Accuracy columns from this repo's runs (deep CNN / software LNN sim /
  // MetaAI prototype) — see bench_table1_overall.
  PrintDataset(
      "Table 2: End-to-end energy & latency, MNIST geometry (784 px)", 784,
      10, 5,
      {{"deep", 0.992}, {"lnn", 0.946}, {"metaai", 0.905}});
  PrintDataset(
      "Table 3: End-to-end energy & latency, AFHQ geometry (2704 px)", 2704,
      3, 3,
      {{"deep", 0.947}, {"lnn", 0.853}, {"metaai", 0.845}});
  std::cout << "(Shape check: MetaAI's server compute is negligible, its"
               " total energy ~5.8x below the\n best digital baseline and"
               " ~16.7x below GPU ResNet-18, and its total latency beats"
               " the CPU LNN pipeline.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("table2_3_energy_latency");
  metaai::bench::Run();
  return 0;
}
