// Fig 18: performance of the two parallelism schemes.
//
// For three datasets, compare the sequential baseline (one output per
// transmission round) against subcarrier-based parallelism (all outputs
// simultaneously on OFDM subcarriers, Eqn 9) and antenna-based parallelism
// (one output per receive antenna, Eqn 10). Both parallel schemes trade a
// slight accuracy loss for an R-fold latency reduction.
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  Table table("Fig 18: Parallelism schemes (accuracy %, rounds/inference)",
              {"Dataset", "Sequential", "Subcarrier", "Antenna"});
  for (const auto& name : {"mnist", "fruits", "widar"}) {
    const data::Dataset ds = data::MakeByName(name);
    Rng rng(18);
    const auto model =
        core::TrainModel(ds.train, RobustTrainingOptions(), rng);
    const mts::Metasurface surface{mts::MetasurfaceSpec{}};

    std::vector<std::string> row{ds.name};
    for (const auto mode :
         {core::ParallelismMode::kSequential,
          core::ParallelismMode::kSubcarrier,
          core::ParallelismMode::kAntenna}) {
      core::DeploymentOptions options;
      options.mode = mode;
      // Half the class count per round: a 2x latency cut at slight
      // accuracy cost (Appendix A.3 sweeps the full width range).
      options.parallel_width = (ds.num_classes + 1) / 2;
      core::Deployment deployment(model, surface, DefaultLinkConfig(),
                                  options);
      Rng eval_rng(181);
      const sim::SyncModel sync = DeploymentSyncModel();
      const double acc =
          deployment.EvaluateAccuracy(ds.test, sync, eval_rng, 120);
      row.push_back(FormatPercent(acc) + " (" +
                    std::to_string(deployment.RoundsPerInference()) +
                    " rounds)");
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig18] %s done\n", ds.name.c_str());
  }
  table.Print(std::cout);
  std::cout << "(Shape check: both parallel schemes land slightly below the"
               " sequential baseline\n while cutting rounds per inference"
               " from R to 1.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig18_parallelism");
  metaai::bench::Run();
  return 0;
}
