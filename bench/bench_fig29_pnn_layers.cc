// Fig 29 (Appendix A.1): why traditional linear PNNs need multiple
// metasurface layers.
//
// A stacked transmissive PNN processes all inputs in parallel; a single
// layer cannot assign independent weights per input (Eqns 15-18), so its
// accuracy falls short of a digital LNN. Stacking layers adds degrees of
// freedom and the accuracy climbs toward the digital single-FC reference —
// which MetaAI's sequential decomposition reaches with ONE surface.
#include "bench_util.h"

#include "common/table.h"
#include "data/encoding.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 100, .test_per_class = 30});
  const auto train = data::EncodeDataset(ds.train, rf::Modulation::kQam256);
  const auto test = data::EncodeDataset(ds.test, rf::Modulation::kQam256);

  // Digital LNN reference (one fully connected complex layer).
  Rng lnn_rng(29);
  nn::ComplexLinearModel lnn(ds.train.dim, ds.num_classes);
  lnn.Initialize(lnn_rng);
  lnn.Train(train, {}, lnn_rng);
  const double lnn_acc = lnn.Evaluate(test);

  Table table("Fig 29: Stacked-PNN accuracy (%) vs number of layers",
              {"Layers", "Accuracy", "Digital LNN reference"});
  for (std::size_t layers = 1; layers <= 6; ++layers) {
    core::StackedPnnConfig config;
    config.input_dim = ds.train.dim;
    config.num_classes = ds.num_classes;
    config.atoms_per_layer = 144;
    config.num_layers = layers;
    config.epochs = 40;
    config.learning_rate = 0.3;
    core::StackedPnn pnn(config);
    Rng rng(290 + layers);
    pnn.Initialize(rng);
    pnn.Train(train, rng);
    table.AddRow({std::to_string(layers), FormatPercent(pnn.Evaluate(test)),
                  FormatPercent(lnn_acc)});
    std::fprintf(stderr, "[fig29] L=%zu done\n", layers);
  }
  table.Print(std::cout);
  std::cout << "(Shape check: accuracy rises with layer count and"
               " approaches the digital LNN\n reference around five"
               " layers, as in the paper.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig29_pnn_layers");
  metaai::bench::Run();
  return 0;
}
