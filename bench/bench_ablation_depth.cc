// Ablation: cascade depth (stacked-intelligent-metasurface layers).
//
// The paper's prototype is one 16x16 panel; the LayerGraph tentpole lets
// K programmable surfaces compose in the propagation path, each upper
// layer contributing its coupling/focus gain to the link budget (see
// mts/layer_graph.h). This ablation deploys the SAME trained model at
// depth K in {1, 2, 3} over a noise-limited link (Tx power backed off
// from the paper's +20 dBm operating point) and reports the end-to-end
// over-the-air accuracy per depth.
//
// Two hard gates:
//  * the K=1 graph deployment must score EXACTLY the legacy
//    single-surface deployment (the bitwise-compatibility contract);
//  * K=3 must beat-or-match K=1 on this profile (the added focus gain
//    lifts the per-symbol SNR out of the noise floor).
#include "bench_util.h"

#include "common/table.h"
#include "mts/layer_graph.h"

namespace metaai::bench {
namespace {

/// Noise-limited operating point: the paper setup with the transmitter
/// backed off to -6 dBm, where the single-panel deployment loses a
/// meaningful slice of accuracy to the noise floor.
sim::OtaLinkConfig NoiseLimitedLinkConfig() {
  sim::OtaLinkConfig config = DefaultLinkConfig();
  config.budget.tx_power_dbm = -6.0;
  return config;
}

/// Depth-K graph: the prototype front panel plus K-1 identical 16x16
/// upper layers at 1.3x coupling gain each.
mts::LayerGraph MakeGraph(std::size_t depth) {
  std::vector<mts::PhysicalLayerSpec> specs(depth);
  for (std::size_t l = 1; l < depth; ++l) specs[l].coupling_gain = 1.3;
  return mts::LayerGraph(std::move(specs));
}

int Run() {
  BenchReport report("ablation_depth");
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(91);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);

  // Bitwise gate: the K=1 graph deployment reproduces the legacy
  // single-surface path exactly, so both must score identical accuracy
  // on identical RNG streams.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment legacy(model, surface, NoiseLimitedLinkConfig());
  Rng legacy_rng(911);
  const double legacy_accuracy =
      legacy.EvaluateAccuracyAtOffset(ds.test, 0.0, legacy_rng, 120);

  Table table("Ablation: cascade depth (noise-limited link, -6 dBm Tx)",
              {"Depth", "Gain product", "Mean relative residual",
               "OTA accuracy"});
  std::vector<double> accuracy;
  for (const std::size_t depth : {1u, 2u, 3u}) {
    const mts::LayerGraph graph = MakeGraph(depth);
    const core::Deployment deployment(model, graph, NoiseLimitedLinkConfig());
    Rng eval_rng(911);  // same stream for every depth (and the gate)
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 120);
    accuracy.push_back(acc);
    double gain = 1.0;
    for (std::size_t l = 1; l < depth; ++l) gain *= 1.3;
    table.AddRow({std::to_string(depth), FormatDouble(gain, 2),
                  FormatDouble(deployment.schedules().mean_relative_residual,
                               4),
                  FormatPercent(acc)});
    report.Headline("depth" + std::to_string(depth) + "_accuracy", acc);
  }
  table.Print(std::cout);
  report.Headline("legacy_accuracy", legacy_accuracy);

  if (accuracy[0] != legacy_accuracy) {
    std::fprintf(stderr,
                 "FAILED: depth-1 graph accuracy %.6f != legacy surface "
                 "accuracy %.6f (bitwise contract broken)\n",
                 accuracy[0], legacy_accuracy);
    return 1;
  }
  if (accuracy[2] < accuracy[0]) {
    std::fprintf(stderr,
                 "FAILED: depth-3 accuracy %.6f fell below depth-1 %.6f on "
                 "the noise-limited profile\n",
                 accuracy[2], accuracy[0]);
    return 1;
  }
  std::cout << "(Finding: on a noise-limited link the extra layers' focus"
               " gain recovers accuracy\n the single panel loses to the"
               " noise floor; at the paper's +20 dBm the depths tie.)\n";
  return 0;
}

}  // namespace
}  // namespace metaai::bench

int main() { return metaai::bench::Run(); }
