// Ablation: can a digital nonlinear head close the accuracy gap? (§7
// "Model scalability" — the paper's named future-work direction.)
//
// The hybrid model computes a hidden complex layer over the air (H rounds)
// and applies a small ReLU head at the server. The catch this ablation
// quantifies: the receiver can only measure hidden MAGNITUDES, so the
// bottleneck discards the phase half of the hidden representation. On our
// tasks the head recovers little to nothing over the plain linear MetaAI
// — evidence that closing the gap to deep digital baselines needs
// phase-preserving (coherent) hidden detection or nonlinear metasurface
// elements, not just digital post-processing.
#include "bench_util.h"

#include "common/table.h"
#include "nn/conv_net.h"

namespace metaai::bench {
namespace {

void Run() {
  Table table("Ablation: over-the-air hidden layer + digital ReLU head",
              {"Dataset", "MetaAI LNN (sim)", "Hybrid H=32 (sim)",
               "Hybrid H=32 (OTA)", "Deep CNN"});
  for (const auto& name : {"fashion", "afhq", "mnist"}) {
    const data::Dataset ds = data::MakeByName(name);

    Rng lnn_rng(61);
    const auto lnn = core::TrainModel(ds.train, {}, lnn_rng);
    const double lnn_acc = core::EvaluateDigital(lnn, ds.test);

    core::HybridModel hybrid(ds.train.dim, 32, ds.num_classes,
                             rf::Modulation::kQam256);
    Rng hybrid_rng(62);
    hybrid.Initialize(hybrid_rng);
    core::HybridTrainOptions options;
    options.epochs = 80;
    options.learning_rate = 0.03;
    options.sync_error_injection = true;
    options.sync_gamma_scale_us = 1.85 * DeploymentLatencyScale();
    hybrid.Train(ds.train, options, hybrid_rng);
    const double hybrid_sim = hybrid.Evaluate(ds.test);

    const mts::Metasurface surface{mts::MetasurfaceSpec{}};
    Rng ota_rng(63);
    const sim::SyncModel sync = DeploymentSyncModel();
    const double hybrid_ota = core::EvaluateHybridOverTheAir(
        hybrid, surface, DefaultLinkConfig(), ds.test, sync, ota_rng, 120);

    Rng cnn_rng(64);
    nn::ConvNet cnn({.height = ds.height,
                     .width = ds.width,
                     .conv1_channels = 8,
                     .conv2_channels = 16,
                     .hidden = 64,
                     .num_classes = ds.num_classes});
    cnn.Initialize(cnn_rng);
    cnn.Train(ds.train, {}, cnn_rng);

    table.AddRow({ds.name, FormatPercent(lnn_acc),
                  FormatPercent(hybrid_sim), FormatPercent(hybrid_ota),
                  FormatPercent(cnn.Evaluate(ds.test))});
    std::fprintf(stderr, "[ablation_hybrid] %s done\n", ds.name.c_str());
  }
  table.Print(std::cout);
  std::cout << "(Finding: magnitude-only hidden detection caps the hybrid"
               " at roughly the linear\n model's accuracy — the digital"
               " head cannot recover the discarded phase, so closing\n"
               " the gap to deep baselines requires coherent hidden"
               " readout or nonlinear atoms.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("ablation_hybrid");
  metaai::bench::Run();
  return 0;
}
