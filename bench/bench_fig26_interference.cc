// Fig 26: impact of dynamic interference — a person walking in one of
// four regions while the system runs.
//
// In regions R1-R3 the walker only adds a slowly drifting extra multipath
// component; because it is static within each symbol, the mid-symbol-flip
// cancellation removes it and accuracy barely moves. In region R4 the
// walker intermittently blocks the MTS-Rx path itself, attenuating the
// computing signal — the one case the cancellation cannot fix — yet
// accuracy remains usable (paper: >= 85.4%).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(26);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 26: Accuracy (%) under a walking interferer",
              {"Region", "Accuracy"});
  Rng eval_rng(261);
  for (const auto region :
       {sim::InterfererRegion::kNone, sim::InterfererRegion::kR1,
        sim::InterfererRegion::kR2, sim::InterfererRegion::kR3,
        sim::InterfererRegion::kR4}) {
    sim::OtaLinkConfig config = DefaultLinkConfig(2600);
    config.environment.interferer = region;
    const double acc = PrototypeAccuracy(model, surface, config, ds.test,
                                         eval_rng, 200);
    table.AddRow({sim::InterfererRegionName(region), FormatPercent(acc)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: R1-R3 barely move (cancellation absorbs the"
               " dynamic path);\n R4 — blocking the MTS-Rx path — drops"
               " the most but stays usable.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig26_interference");
  metaai::bench::Run();
  return 0;
}
