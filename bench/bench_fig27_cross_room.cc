// Fig 27: cross-room operation. The Tx and MTS stay fixed; the receiver
// is moved through 18 positions spanning three offices — each wall adds
// attenuation on the MTS-Rx leg and the Rx-MTS distance grows. Accuracy
// decreases room by room but remains usable even two walls away
// (paper: room 1 >= 82.6%, room 2 >= 76.6%, room 3 >= 71.5%).
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng(27);
  const auto model = core::TrainModel(ds.train, RobustTrainingOptions(), rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  Table table("Fig 27: Accuracy (%) across three rooms (P1-P18)",
              {"Position", "Room", "Distance (m)", "Walls", "Accuracy"});
  Rng eval_rng(271);
  std::vector<double> room_min(3, 1.0);
  for (int p = 1; p <= 18; ++p) {
    const int room = (p - 1) / 6;            // 0, 1, 2
    const double walls_db = 7.0 * room;      // drywall per crossing
    Rng place(2700 + static_cast<std::uint64_t>(p));
    const double distance = 2.0 + 3.5 * room + place.Uniform(0.0, 3.0);
    sim::OtaLinkConfig config =
        DefaultLinkConfig(2700 + static_cast<std::uint64_t>(p));
    config.geometry.rx_distance_m = distance;
    config.geometry.rx_angle_rad =
        rf::DegToRad(place.Uniform(15.0, 50.0));
    config.environment.wall_attenuation_db = walls_db;
    config.environment.direct_tx_rx = room == 0;
    const double acc = PrototypeAccuracy(model, surface, config, ds.test,
                                         eval_rng, 80);
    room_min[static_cast<std::size_t>(room)] =
        std::min(room_min[static_cast<std::size_t>(room)], acc);
    table.AddRow({"P" + std::to_string(p), std::to_string(room + 1),
                  FormatDouble(distance, 1), std::to_string(room),
                  FormatPercent(acc)});
  }
  table.Print(std::cout);
  std::cout << "Per-room minimum accuracy: room 1 "
            << FormatPercent(room_min[0]) << "%, room 2 "
            << FormatPercent(room_min[1]) << "%, room 3 "
            << FormatPercent(room_min[2]) << "%\n";
  std::cout << "(Shape check: accuracy decreases room by room with distance"
               " and wall count.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig27_cross_room");
  metaai::bench::Run();
  return 0;
}
