// Shared setup for the per-figure/per-table benchmark harnesses.
//
// Every bench uses the paper's default experimental setup (§4) unless the
// experiment sweeps it: 5.25 GHz carrier, 256-QAM, 1 Msym/s, Tx-MTS 1 m at
// 30 deg, MTS-Rx 3 m at 40 deg, directional antennas, office multipath,
// 16x16 2-bit metasurface. Sync errors follow the coarse detector's Gamma
// distribution scaled to this repo's 256-symbol streams (see
// sim::PaperEquivalentLatencyScale and EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <iostream>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::bench {

inline constexpr std::size_t kStreamSymbols = 256;  // 16x16 pixels

inline mts::LinkGeometry DefaultGeometry() {
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(40.0),
          .frequency_hz = 5.25e9};
}

inline sim::OtaLinkConfig DefaultLinkConfig(std::uint64_t channel_seed = 1) {
  sim::OtaLinkConfig config;
  config.geometry = DefaultGeometry();
  config.environment.profile = rf::OfficeProfile();
  config.mts_phase_noise_std = 0.05;
  config.channel_seed = channel_seed;
  return config;
}

/// Sync-error scale holding the paper's error-to-stream-length ratio.
inline double DeploymentLatencyScale() {
  return sim::PaperEquivalentLatencyScale(kStreamSymbols);
}

/// Training options for a prototype deployment: CDFA injector matched to
/// the scaled coarse-detection distribution plus mild noise-aware
/// training.
inline core::TrainingOptions RobustTrainingOptions(
    rf::Modulation modulation = rf::Modulation::kQam256) {
  core::TrainingOptions options;
  options.modulation = modulation;
  options.sync_error_injection = true;
  options.sync_gamma_scale_us = 1.85 * DeploymentLatencyScale();
  options.input_noise_variance = 0.02;
  return options;
}

/// The CDFA sync model at the deployment operating point.
inline sim::SyncModel DeploymentSyncModel() {
  sim::SyncModelConfig config;
  config.latency_scale = DeploymentLatencyScale();
  return sim::SyncModel(sim::SyncMode::kCdfa, config);
}

/// Prototype accuracy of a robust-trained model over a configured link.
inline double PrototypeAccuracy(const core::TrainedModel& model,
                                const mts::Metasurface& surface,
                                const sim::OtaLinkConfig& link_config,
                                const nn::RealDataset& test, Rng& rng,
                                std::size_t max_samples = 200,
                                const core::DeploymentOptions& options = {}) {
  core::Deployment deployment(model, surface, link_config, options);
  const sim::SyncModel sync = DeploymentSyncModel();
  return deployment.EvaluateAccuracy(test, sync, rng, max_samples);
}

}  // namespace metaai::bench
