// Shared setup for the per-figure/per-table benchmark harnesses.
//
// Every bench uses the paper's default experimental setup (§4) unless the
// experiment sweeps it: 5.25 GHz carrier, 256-QAM, 1 Msym/s, Tx-MTS 1 m at
// 30 deg, MTS-Rx 3 m at 40 deg, directional antennas, office multipath,
// 16x16 2-bit metasurface. Sync errors follow the coarse detector's Gamma
// distribution scaled to this repo's 256-symbol streams (see
// sim::PaperEquivalentLatencyScale and EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/table.h"
#include "core/metaai.h"
#include "data/datasets.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/parallel.h"
#include "rf/geometry.h"

namespace metaai::bench {

/// Per-binary telemetry + result reporting. Construct one at the top of
/// main(); it installs a metrics registry and tracer for the run, captures
/// every Table the bench prints, and on destruction writes
/// `$METAAI_BENCH_OUT/BENCH_<name>.json` (schema "metaai.bench.v1"):
///
///   { "schema": "metaai.bench.v1", "bench": <name>, "elapsed_s": n,
///     "headlines": { <key>: <number>, ... },
///     "tables": [ { "title": s, "headers": [..], "rows": [[..], ..] } ],
///     "metrics": <metaai.obs.v1 document, spans included> }
///
/// Nothing is written when METAAI_BENCH_OUT is unset, so interactive runs
/// stay side-effect free (mirroring METAAI_CSV_DIR in common/table).
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        started_(std::chrono::steady_clock::now()),
        previous_registry_(obs::SetRegistry(&registry_)),
        previous_tracer_(obs::SetTracer(&tracer_)),
        previous_listener_(
            SetTableListener([this](const Table& table) { AddTable(table); })) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    SetTableListener(std::move(previous_listener_));
    obs::SetTracer(previous_tracer_);
    obs::SetRegistry(previous_registry_);
    if (const char* dir = std::getenv("METAAI_BENCH_OUT"); dir != nullptr) {
      const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
      std::ofstream out(path);
      if (out.good()) {
        out << ToJson();
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      }
    }
  }

  /// Adds one named headline number (benches usually rely on the captured
  /// tables instead).
  void Headline(const std::string& key, double value) {
    headlines_.emplace_back(key, value);
  }

  void AddTable(const Table& table) {
    tables_.push_back({table.title(), table.headers(), table.rows()});
  }

  std::string ToJson() const {
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    std::ostringstream os;
    os << "{\n  \"schema\": \"metaai.bench.v1\",\n  \"bench\": "
       << Quote(name_) << ",\n  \"elapsed_s\": " << elapsed_s
       << ",\n  \"headlines\": {";
    for (std::size_t i = 0; i < headlines_.size(); ++i) {
      os << (i > 0 ? ", " : "") << Quote(headlines_[i].first) << ": "
         << headlines_[i].second;
    }
    os << "},\n  \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      const CapturedTable& table = tables_[i];
      os << (i > 0 ? ",\n    " : "\n    ") << "{\"title\": "
         << Quote(table.title) << ", \"headers\": ";
      WriteStrings(os, table.headers);
      os << ", \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        if (r > 0) os << ", ";
        WriteStrings(os, table.rows[r]);
      }
      os << "]}";
    }
    os << (tables_.empty() ? "" : "\n  ") << "],\n  \"metrics\": "
       << obs::ToJson(registry_.Snapshot(), &tracer_) << "}\n";
    return os.str();
  }

 private:
  struct CapturedTable {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  static void WriteStrings(std::ostream& os,
                           const std::vector<std::string>& values) {
    os << '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
      os << (i > 0 ? ", " : "") << Quote(values[i]);
    }
    os << ']';
  }

  std::string name_;
  std::chrono::steady_clock::time_point started_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  obs::Registry* previous_registry_;
  obs::Tracer* previous_tracer_;
  TableListener previous_listener_;
  std::vector<std::pair<std::string, double>> headlines_;
  std::vector<CapturedTable> tables_;
};

inline constexpr std::size_t kStreamSymbols = 256;  // 16x16 pixels

inline mts::LinkGeometry DefaultGeometry() {
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(40.0),
          .frequency_hz = 5.25e9};
}

inline sim::OtaLinkConfig DefaultLinkConfig(std::uint64_t channel_seed = 1) {
  sim::OtaLinkConfig config;
  config.geometry = DefaultGeometry();
  config.environment.profile = rf::OfficeProfile();
  config.mts_phase_noise_std = 0.05;
  config.channel_seed = channel_seed;
  return config;
}

/// Sync-error scale holding the paper's error-to-stream-length ratio.
inline double DeploymentLatencyScale() {
  return sim::PaperEquivalentLatencyScale(kStreamSymbols);
}

/// Training options for a prototype deployment: CDFA injector matched to
/// the scaled coarse-detection distribution plus mild noise-aware
/// training.
inline core::TrainingOptions RobustTrainingOptions(
    rf::Modulation modulation = rf::Modulation::kQam256) {
  core::TrainingOptions options;
  options.modulation = modulation;
  options.sync_error_injection = true;
  options.sync_gamma_scale_us = 1.85 * DeploymentLatencyScale();
  options.input_noise_variance = 0.02;
  return options;
}

/// The CDFA sync model at the deployment operating point.
inline sim::SyncModel DeploymentSyncModel() {
  sim::SyncModelConfig config;
  config.latency_scale = DeploymentLatencyScale();
  return sim::SyncModel(sim::SyncMode::kCdfa, config);
}

/// Deterministic fan-out over independent bench trials (locations, sync
/// draws, seed repeats): trial i gets its own generator pre-forked from
/// `base` on the calling thread and results come back in trial order, so
/// the returned vector is bitwise identical for any METAAI_THREADS.
/// `fn(trial_rng, trial_index)` returns the trial's scalar result;
/// telemetry emitted inside trials is buffered and merged in trial order
/// (obs::DeterministicParallelFor).
template <typename Fn>
std::vector<double> ParallelTrials(std::size_t trials, Rng& base, Fn&& fn) {
  std::vector<Rng> rngs = par::ForkRngs(base, trials);
  std::vector<double> results(trials, 0.0);
  obs::DeterministicParallelFor(trials, [&](std::size_t i) {
    results[i] = fn(rngs[i], i);
  });
  return results;
}

/// Prototype accuracy of a robust-trained model over a configured link.
inline double PrototypeAccuracy(const core::TrainedModel& model,
                                const mts::Metasurface& surface,
                                const sim::OtaLinkConfig& link_config,
                                const nn::RealDataset& test, Rng& rng,
                                std::size_t max_samples = 200,
                                const core::DeploymentOptions& options = {}) {
  core::Deployment deployment(model, surface, link_config, options);
  const sim::SyncModel sync = DeploymentSyncModel();
  return deployment.EvaluateAccuracy(test, sync, rng, max_samples);
}

}  // namespace metaai::bench
