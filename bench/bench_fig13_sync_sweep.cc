// Fig 13(b): recognition accuracy vs synchronization delay error, with
// and without the CDFA fine-grained adjustment.
//
// Without CDFA (plain training) accuracy collapses within ~1 symbol of
// offset; with the Gamma-matched error injector the model stays usable
// across the coarse detector's whole error range and declines only once
// the offset leaves the trained distribution (~4+ us).
#include "bench_util.h"

#include "common/table.h"

namespace metaai::bench {
namespace {

void Run() {
  const data::Dataset ds = data::MakeMnistLike();
  Rng rng_plain(13);
  const auto plain = core::TrainModel(ds.train, {}, rng_plain);
  Rng rng_cdfa(13);
  core::TrainingOptions cdfa_options;
  cdfa_options.sync_error_injection = true;  // full-scale Gamma(2, 1.85)
  const auto cdfa = core::TrainModel(ds.train, cdfa_options, rng_cdfa);

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment dep_plain(plain, surface, DefaultLinkConfig());
  const core::Deployment dep_cdfa(cdfa, surface, DefaultLinkConfig());

  Table table("Fig 13b: Accuracy (%) vs sync delay error",
              {"Error (us)", "w/o CDFA", "with CDFA"});
  Rng rng(131);
  for (const double offset : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0,
                              8.0}) {
    const double without = dep_plain.EvaluateAccuracyAtOffset(
        ds.test, offset, rng, 150);
    const double with = dep_cdfa.EvaluateAccuracyAtOffset(
        ds.test, offset, rng, 150);
    table.AddRow({FormatDouble(offset, 1), FormatPercent(without),
                  FormatPercent(with)});
  }
  table.Print(std::cout);
  std::cout << "(Shape check: w/o CDFA collapses within ~1 symbol; CDFA\n"
               " holds through the trained error range and declines beyond"
               " ~4-5 us.)\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig13_sync_sweep");
  metaai::bench::Run();
  return 0;
}
