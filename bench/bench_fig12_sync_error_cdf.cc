// Fig 12: CDF of the residual synchronization error after coarse-grained
// (energy-detector) detection. The paper reports that 51.7% of errors
// exceed 3 us — large enough to hurt recognition badly without the
// fine-grained adjustment.
#include "bench_util.h"

#include "common/stats.h"
#include "common/table.h"
#include "mts/energy_detector.h"

namespace metaai::bench {
namespace {

void Run() {
  const mts::EnergyDetector detector;
  Rng rng(12);
  const std::vector<double> errors =
      ParallelTrials(20000, rng, [&](Rng& trial_rng, std::size_t) {
        return detector.SampleDetectionLatencyUs(trial_rng);
      });

  Table table("Fig 12: Sync error CDF of coarse-grained detection",
              {"Error (us)", "CDF"});
  for (const double threshold :
       {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0}) {
    table.AddRow({FormatDouble(threshold, 1),
                  FormatDouble(1.0 - FractionAbove(errors, threshold), 3)});
  }
  table.Print(std::cout);
  std::cout << "Fraction of errors > 3 us: "
            << FormatPercent(FractionAbove(errors, 3.0))
            << "% (paper: 51.7%)\n";
  const double ps[] = {50.0, 90.0};
  const std::vector<double> tails = Percentiles(errors, ps);
  std::cout << "Median error: " << FormatDouble(tails[0], 2)
            << " us, 90th percentile: " << FormatDouble(tails[1], 2)
            << " us\n";
}

}  // namespace
}  // namespace metaai::bench

int main() {
  metaai::bench::BenchReport report("fig12_sync_error_cdf");
  metaai::bench::Run();
  return 0;
}
